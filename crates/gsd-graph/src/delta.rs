//! Delta sub-block segments: streaming mutations layered over a base grid.
//!
//! A preprocessed grid is immutable; mutations arrive as **append-only
//! delta segments** (LSM-style). One ingested batch = one *epoch*: for
//! every sub-block `(i, j)` the batch touches, the writer appends one
//! segment object holding that block's insert/delete records, then
//! commits a cumulative [`DeltaManifest`] and finally rewrites the sealed
//! `meta.json` at format v4 with the new epoch (see
//! [`crate::format::DeltaSection`]). The meta is the commit point: a
//! crash mid-ingest leaves orphaned segment objects that no committed
//! manifest references, never a half-applied batch.
//!
//! ```text
//! <prefix>delta/seg_<epoch>_<i>_<j>.ops   — one block's ops of one epoch
//! <prefix>delta/manifest_<epoch>.json     — cumulative DeltaManifest
//! ```
//!
//! # The merging read path
//!
//! [`GridGraph::open`](crate::grid::GridGraph) on a v4 meta loads a
//! [`DeltaOverlay`]: every touched sub-block is materialized in memory as
//! its **merged** form — base edges with deletes removed and inserts
//! merged into canonical sort position — together with its recomputed
//! per-vertex index and the affected rows of the combined row index. All
//! grid read primitives consult the overlay first, so every engine, the
//! prefetch pipeline and the serve daemon see base+delta as one logical
//! sub-block without any code of their own. Untouched blocks read from
//! storage unchanged.
//!
//! Because sub-blocks are sorted by the canonical total order
//! `(src, dst, weight-bits)` (see `preprocess`), the merged payload is
//! **byte-identical** to what a full re-preprocess of the merged edge
//! list would write — the property compaction is fingerprint-checked
//! against, and the reason analytic results on base+delta match a
//! from-scratch grid bit for bit.
//!
//! # Mutation semantics
//!
//! An insert appends one copy of the edge (the grid is a multiset of
//! edges, as preprocessing preserves duplicates); a delete removes
//! **every** copy of its `(src, dst)` pair. Ops within a batch and
//! across epochs apply in order. Mutations never grow the vertex set.
//!
//! # Integrity
//!
//! Each segment is covered by an [`ObjectEntry`] (length + CRC32) in the
//! manifest's [`IntegritySection`]; the manifest's entry list is guarded
//! by its section CRC and pinned to the sealed meta through the epoch.
//! Overlay loading verifies every segment and every base payload it
//! merges, and `scrub` extends to segments (see [`crate::integrity`]).

use crate::format::{
    block_edges_key, block_index_key, decode_u32s, GridMeta, DELTA_FORMAT_VERSION,
};
use crate::types::{Edge, VertexId};
use gsd_integrity::{IntegritySection, ObjectEntry};
use gsd_io::Storage;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Magic prefix of a delta segment payload.
pub const SEGMENT_MAGIC: &[u8; 4] = b"GSDS";

/// Key of the delta segment holding sub-block `(i, j)`'s ops of `epoch`.
pub fn segment_key(prefix: &str, epoch: u64, i: u32, j: u32) -> String {
    format!("{prefix}delta/seg_{epoch:08}_{i}_{j}.ops")
}

/// Key of the cumulative delta manifest committed at `epoch`.
pub fn manifest_key(prefix: &str, epoch: u64) -> String {
    format!("{prefix}delta/manifest_{epoch:08}.json")
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// One edge mutation record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// Append one copy of the edge.
    Insert(Edge),
    /// Remove every copy of the `(src, dst)` pair.
    Delete {
        /// Source vertex of the removed pair.
        src: VertexId,
        /// Destination vertex of the removed pair.
        dst: VertexId,
    },
}

impl DeltaOp {
    /// Source vertex the op touches.
    pub fn src(&self) -> VertexId {
        match self {
            DeltaOp::Insert(e) => e.src,
            DeltaOp::Delete { src, .. } => *src,
        }
    }

    /// Destination vertex the op touches.
    pub fn dst(&self) -> VertexId {
        match self {
            DeltaOp::Insert(e) => e.dst,
            DeltaOp::Delete { dst, .. } => *dst,
        }
    }
}

/// Decoded header of one segment payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Segment encoding version ([`DELTA_FORMAT_VERSION`]).
    pub version: u32,
    /// Epoch the segment belongs to.
    pub epoch: u64,
    /// Source interval of the sub-block.
    pub i: u32,
    /// Destination interval of the sub-block.
    pub j: u32,
}

/// Encodes one segment payload: magic, header, then 13 bytes per record
/// (`op:u8, src:u32, dst:u32, weight-bits:u32`, all little-endian; weight
/// bits are zero for deletes). The encoding is byte-deterministic, so a
/// segment's manifest CRC is reproducible from its ops.
pub fn encode_segment(epoch: u64, i: u32, j: u32, ops: &[DeltaOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + ops.len() * 13);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&DELTA_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&i.to_le_bytes());
    out.extend_from_slice(&j.to_le_bytes());
    out.extend_from_slice(&crate::narrow::from_usize(ops.len(), "segment op count").to_le_bytes());
    for op in ops {
        match op {
            DeltaOp::Insert(e) => {
                out.push(0);
                out.extend_from_slice(&e.src.to_le_bytes());
                out.extend_from_slice(&e.dst.to_le_bytes());
                out.extend_from_slice(&e.weight.to_bits().to_le_bytes());
            }
            DeltaOp::Delete { src, dst } => {
                out.push(1);
                out.extend_from_slice(&src.to_le_bytes());
                out.extend_from_slice(&dst.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }
    out
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize, what: &str) -> std::io::Result<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| invalid(format!("truncated delta segment ({what})")))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(bytes: &[u8], pos: &mut usize, what: &str) -> std::io::Result<u32> {
    let b = take(bytes, pos, 4, what)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
}

/// Decodes one segment payload, validating magic, version and record
/// count. Total: corrupt input is an `InvalidData` error, never a panic.
pub fn decode_segment(bytes: &[u8]) -> std::io::Result<(SegmentHeader, Vec<DeltaOp>)> {
    let mut pos = 0usize;
    if take(bytes, &mut pos, 4, "magic")? != SEGMENT_MAGIC {
        return Err(invalid("delta segment magic mismatch"));
    }
    let version = take_u32(bytes, &mut pos, "version")?;
    if version != DELTA_FORMAT_VERSION {
        return Err(invalid(format!(
            "unsupported delta segment version {version} (supported: {DELTA_FORMAT_VERSION})"
        )));
    }
    let epoch = u64::from_le_bytes(
        take(bytes, &mut pos, 8, "epoch")?
            .try_into()
            .expect("8-byte slice"),
    );
    let i = take_u32(bytes, &mut pos, "row")?;
    let j = take_u32(bytes, &mut pos, "column")?;
    let count = take_u32(bytes, &mut pos, "count")? as usize;
    if bytes.len() - pos != count * 13 {
        return Err(invalid(format!(
            "delta segment body is {} bytes but {count} records need {}",
            bytes.len() - pos,
            count * 13
        )));
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = take(bytes, &mut pos, 1, "op tag")?[0];
        let src = take_u32(bytes, &mut pos, "src")?;
        let dst = take_u32(bytes, &mut pos, "dst")?;
        let wbits = take_u32(bytes, &mut pos, "weight")?;
        ops.push(match tag {
            0 => DeltaOp::Insert(Edge::weighted(src, dst, f32::from_bits(wbits))),
            1 => DeltaOp::Delete { src, dst },
            t => return Err(invalid(format!("unknown delta op tag {t}"))),
        });
    }
    Ok((
        SegmentHeader {
            version,
            epoch,
            i,
            j,
        },
        ops,
    ))
}

/// The cumulative delta manifest: every live segment with its checksum,
/// plus the **merged** shape of the grid (edge totals, per-block counts,
/// changed out-degrees) so readers derive the logical graph without
/// replaying ops at open just to count.
///
/// The manifest key carries its epoch
/// ([`manifest_key`]) and the sealed meta names the same epoch, so a
/// torn ingest (manifest written, meta not) leaves the previous
/// epoch's manifest authoritative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaManifest {
    /// Segment encoding version ([`DELTA_FORMAT_VERSION`]).
    pub version: u32,
    /// Epoch this manifest commits (== `meta.delta.epoch`).
    pub epoch: u64,
    /// Checksums of every live segment (prefix-relative keys). Empty
    /// right after a compaction.
    pub segments: IntegritySection,
    /// `|E|` of the merged (base + delta) graph.
    pub merged_num_edges: u64,
    /// Merged per-sub-block edge counts, row-major (`P × P` entries).
    pub merged_block_edge_counts: Vec<u64>,
    /// Vertices whose merged out-degree differs from `degrees.bin`
    /// (ascending).
    pub degree_vertices: Vec<u32>,
    /// Merged absolute out-degrees, parallel to `degree_vertices`.
    pub degree_values: Vec<u32>,
}

impl DeltaManifest {
    /// A manifest with no live segments: merged equals base.
    pub fn empty(epoch: u64, num_edges: u64, block_edge_counts: Vec<u64>) -> Self {
        DeltaManifest {
            version: DELTA_FORMAT_VERSION,
            epoch,
            segments: IntegritySection::new(Vec::new()),
            merged_num_edges: num_edges,
            merged_block_edge_counts: block_edge_counts,
            degree_vertices: Vec::new(),
            degree_values: Vec::new(),
        }
    }

    /// Serializes to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_pretty(self).expect("DeltaManifest serializes")
    }

    /// Parses and validates a manifest against the meta that names it.
    pub fn from_bytes(bytes: &[u8], meta: &GridMeta) -> std::io::Result<Self> {
        let manifest: DeltaManifest = serde_json::from_slice(bytes)
            .map_err(|e| invalid(format!("delta manifest failed to parse: {e}")))?;
        let section = meta
            .delta
            .as_ref()
            .ok_or_else(|| invalid("delta manifest present but meta has no delta section"))?;
        if manifest.version != DELTA_FORMAT_VERSION {
            return Err(invalid(format!(
                "unsupported delta manifest version {}",
                manifest.version
            )));
        }
        if manifest.epoch != section.epoch {
            return Err(invalid(format!(
                "delta manifest epoch {} does not match the sealed meta epoch {}",
                manifest.epoch, section.epoch
            )));
        }
        manifest
            .segments
            .verify_section(&manifest_key("", manifest.epoch))
            .map_err(|e| e.into_io())?;
        if manifest.merged_block_edge_counts.len() != (meta.p * meta.p) as usize
            || manifest.merged_block_edge_counts.iter().sum::<u64>() != manifest.merged_num_edges
            || manifest.degree_vertices.len() != manifest.degree_values.len()
        {
            return Err(invalid("inconsistent delta manifest"));
        }
        Ok(manifest)
    }
}

/// Reads and validates the manifest committed by `meta` (which must carry
/// a delta section).
pub fn read_manifest(
    storage: &dyn Storage,
    prefix: &str,
    meta: &GridMeta,
) -> std::io::Result<DeltaManifest> {
    let section = meta
        .delta
        .as_ref()
        .ok_or_else(|| invalid("grid has no delta section"))?;
    let bytes = storage.read_all(&manifest_key(prefix, section.epoch))?;
    DeltaManifest::from_bytes(&bytes, meta)
}

/// One merged (base + delta) sub-block held in memory by the overlay.
#[derive(Debug, Clone)]
pub struct OverlayBlock {
    /// Encoded merged edge payload — byte-identical to what a full
    /// re-preprocess of the merged edge list would write for this block.
    pub bytes: Vec<u8>,
    /// Merged per-vertex CSR offsets (empty on unindexed formats).
    pub offsets: Vec<u32>,
    /// Merged edge count.
    pub edge_count: u64,
}

/// In-memory merge of all live delta segments over their base sub-blocks.
///
/// Immutable once loaded and shared behind an `Arc`, so cloned
/// [`GridGraph`](crate::grid::GridGraph) handles (engine + pipeline
/// workers) read it concurrently without locks.
#[derive(Debug, Default)]
pub struct DeltaOverlay {
    blocks: BTreeMap<(u32, u32), OverlayBlock>,
    /// Recomputed combined row indexes (decoded), for rows with >= 1
    /// merged block (source-sorted indexed formats only).
    rows: BTreeMap<u32, Vec<u32>>,
    /// Sparse merged out-degree patch over `degrees.bin`.
    degrees: BTreeMap<u32, u32>,
    /// Bytes held across merged payloads + indexes (for cost accounting).
    resident_bytes: u64,
}

impl DeltaOverlay {
    /// The merged sub-block `(i, j)`, if this overlay materializes it.
    pub fn block(&self, i: u32, j: u32) -> Option<&OverlayBlock> {
        self.blocks.get(&(i, j))
    }

    /// The recomputed combined row index of interval `i`, if any block
    /// of the row is merged.
    pub fn row(&self, i: u32) -> Option<&[u32]> {
        self.rows.get(&i).map(|v| v.as_slice())
    }

    /// Applies the merged out-degree patch to a freshly loaded base
    /// degree table.
    pub fn patch_degrees(&self, degrees: &mut [u32]) {
        for (&v, &d) in &self.degrees {
            degrees[v as usize] = d;
        }
    }

    /// Number of merged sub-blocks resident in memory.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of merged payloads and indexes resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }
}

/// Verifies `payload` against the base integrity section entry for
/// `rel_key`, when the meta carries one.
fn verify_base_payload(meta: &GridMeta, rel_key: &str, payload: &[u8]) -> std::io::Result<()> {
    let Some(section) = &meta.integrity else {
        return Ok(());
    };
    let entry = section
        .lookup(rel_key)
        .ok_or_else(|| invalid(format!("object {rel_key:?} is not in the grid manifest")))?;
    if ObjectEntry::of(rel_key, payload) != *entry {
        return Err(invalid(format!(
            "base object {rel_key:?} failed its checksum while merging delta segments"
        )));
    }
    Ok(())
}

/// Applies `ops` (in order) to the sorted base edges of one sub-block and
/// returns the merged edges in canonical `(src, dst, weight-bits)` order
/// (or `(dst, src, weight-bits)` on dst-sorted formats).
fn merge_block_edges(base: &[Edge], ops: &[DeltaOp], dst_sorted: bool) -> Vec<Edge> {
    let mut edges = base.to_vec();
    for op in ops {
        match op {
            DeltaOp::Insert(e) => edges.push(*e),
            DeltaOp::Delete { src, dst } => edges.retain(|e| e.src != *src || e.dst != *dst),
        }
    }
    if dst_sorted {
        edges.sort_unstable_by_key(|e| (e.dst, e.src, e.weight.to_bits()));
    } else {
        edges.sort_unstable_by_key(|e| (e.src, e.dst, e.weight.to_bits()));
    }
    edges
}

/// Loads the delta overlay named by `meta` and patches the in-memory meta
/// to the **merged** shape (`num_edges`, `block_edge_counts`), so every
/// consumer of [`GridMeta`] — engines skipping empty blocks, the
/// scheduler's `C_r`/`C_s` cost model pricing `|E|·(M+W)` — sees base and
/// delta as one graph. The on-disk meta keeps base counts; only the
/// handle's copy is patched.
///
/// Returns `None` (and leaves the meta untouched) when the grid carries
/// no delta section or no live segments.
pub(crate) fn load_overlay(
    storage: &dyn Storage,
    prefix: &str,
    meta: &mut GridMeta,
) -> std::io::Result<Option<DeltaOverlay>> {
    if meta.delta.is_none() {
        return Ok(None);
    }
    let manifest = read_manifest(storage, prefix, meta)?;
    if manifest.segments.is_empty() {
        // Compacted (or degenerate) state: merged equals base.
        return Ok(None);
    }
    let codec = meta.codec();
    let intervals = meta.intervals();
    let p = meta.p;

    // Verify + decode every live segment, grouping ops per sub-block in
    // epoch order (manifest entries are key-sorted; the zero-padded epoch
    // in the key makes that epoch order).
    let mut per_block: BTreeMap<(u32, u32), Vec<DeltaOp>> = BTreeMap::new();
    for entry in &manifest.segments.objects {
        let key = format!("{prefix}{}", entry.key);
        let payload = storage.read_all(&key)?;
        if ObjectEntry::of(&entry.key, &payload) != *entry {
            return Err(invalid(format!(
                "delta segment {:?} failed its manifest checksum",
                entry.key
            )));
        }
        let (header, ops) = decode_segment(&payload)?;
        if header.i >= p || header.j >= p || header.epoch > manifest.epoch {
            return Err(invalid(format!(
                "delta segment {:?} names sub-block ({}, {}) epoch {} outside the grid",
                entry.key, header.i, header.j, header.epoch
            )));
        }
        per_block
            .entry((header.i, header.j))
            .or_default()
            .extend(ops);
    }

    let mut overlay = DeltaOverlay::default();
    let mut scratch_counts = meta.block_edge_counts.clone();
    for (&(i, j), ops) in &per_block {
        let base_bytes = meta.block_bytes(i, j) as usize;
        let mut payload = vec![0u8; base_bytes];
        let key = block_edges_key(prefix, i, j);
        if base_bytes > 0 {
            storage.read_at(&key, 0, &mut payload)?;
        }
        verify_base_payload(meta, &block_edges_key("", i, j), &payload)?;
        let merged = merge_block_edges(&codec.decode_all(&payload), ops, meta.dst_sorted);
        let want = manifest.merged_block_edge_counts[(i * p + j) as usize];
        if merged.len() as u64 != want {
            return Err(invalid(format!(
                "sub-block ({i}, {j}) merges to {} edges but the delta manifest records {want}",
                merged.len()
            )));
        }
        let offsets = if meta.indexed {
            let indexed_interval = if meta.dst_sorted { j } else { i };
            crate::preprocess::build_index(
                &merged,
                intervals.range(indexed_interval),
                meta.dst_sorted,
            )
        } else {
            Vec::new()
        };
        let bytes = codec.encode_all(&merged);
        let index_bytes = (offsets.len() * 4) as u64;
        overlay.resident_bytes += bytes.len() as u64 + index_bytes;
        scratch_counts[(i * p + j) as usize] = want;
        overlay.blocks.insert(
            (i, j),
            OverlayBlock {
                bytes,
                offsets,
                edge_count: want,
            },
        );
    }

    // Recompute the combined row index of every row with a merged block:
    // merged blocks contribute their fresh offsets, untouched blocks
    // their on-disk (verified) index payloads.
    if meta.indexed && !meta.dst_sorted {
        let touched_rows: Vec<u32> = {
            let mut rows: Vec<u32> = overlay.blocks.keys().map(|&(i, _)| i).collect();
            rows.dedup();
            rows
        };
        for i in touched_rows {
            let row_len = intervals.len(i) as usize;
            let mut row_index = vec![0u32; (row_len + 1) * p as usize];
            for j in 0..p {
                let offsets = match overlay.blocks.get(&(i, j)) {
                    Some(block) => block.offsets.clone(),
                    None => {
                        let rel = block_index_key("", i, j);
                        let payload = storage.read_all(&block_index_key(prefix, i, j))?;
                        verify_base_payload(meta, &rel, &payload)?;
                        decode_u32s(&payload)?
                    }
                };
                if offsets.len() != row_len + 1 {
                    return Err(invalid(format!(
                        "sub-block ({i}, {j}) index covers {} vertices, expected {row_len}",
                        offsets.len().saturating_sub(1)
                    )));
                }
                for (k, &off) in offsets.iter().enumerate() {
                    row_index[k * p as usize + j as usize] = off;
                }
            }
            overlay.resident_bytes += row_index.len() as u64 * 4;
            overlay.rows.insert(i, row_index);
        }
    }

    for (&v, &d) in manifest.degree_vertices.iter().zip(&manifest.degree_values) {
        if v >= meta.num_vertices {
            return Err(invalid(format!(
                "delta manifest patches out-degree of vertex {v} beyond |V| = {}",
                meta.num_vertices
            )));
        }
        overlay.degrees.insert(v, d);
    }

    // Patch the in-memory meta to the merged shape.
    meta.num_edges = manifest.merged_num_edges;
    meta.block_edge_counts = scratch_counts;
    Ok(Some(overlay))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::DeltaSection;

    #[test]
    fn segment_roundtrip() {
        let ops = vec![
            DeltaOp::Insert(Edge::weighted(3, 9, 0.5)),
            DeltaOp::Delete { src: 1, dst: 2 },
            DeltaOp::Insert(Edge::new(0, 7)),
        ];
        let bytes = encode_segment(5, 1, 2, &ops);
        let (header, back) = decode_segment(&bytes).unwrap();
        assert_eq!(
            header,
            SegmentHeader {
                version: DELTA_FORMAT_VERSION,
                epoch: 5,
                i: 1,
                j: 2
            }
        );
        assert_eq!(back, ops);
    }

    #[test]
    fn segment_decode_rejects_corruption() {
        let bytes = encode_segment(1, 0, 0, &[DeltaOp::Delete { src: 1, dst: 2 }]);
        for cut in 0..bytes.len() {
            assert!(decode_segment(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF; // magic
        assert!(decode_segment(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4] = 99; // version
        assert!(decode_segment(&bad).is_err());
        let mut bad = bytes;
        bad[24] = 7; // op tag
        assert!(decode_segment(&bad).is_err());
    }

    #[test]
    fn merge_applies_ops_in_order() {
        let base = vec![Edge::new(0, 1), Edge::new(0, 3), Edge::new(2, 1)];
        // Delete (0,3), insert (0,2), then insert and delete (4,4): net
        // effect is the delete wins over the earlier insert.
        let ops = vec![
            DeltaOp::Delete { src: 0, dst: 3 },
            DeltaOp::Insert(Edge::new(0, 2)),
            DeltaOp::Insert(Edge::new(4, 4)),
            DeltaOp::Delete { src: 4, dst: 4 },
        ];
        let merged = merge_block_edges(&base, &ops, false);
        assert_eq!(
            merged,
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(2, 1)]
        );
    }

    #[test]
    fn merge_delete_removes_every_copy_and_reinsert_restores() {
        let base = vec![Edge::new(5, 6), Edge::new(5, 6)];
        let merged = merge_block_edges(&base, &[DeltaOp::Delete { src: 5, dst: 6 }], false);
        assert!(merged.is_empty());
        let merged = merge_block_edges(
            &base,
            &[
                DeltaOp::Delete { src: 5, dst: 6 },
                DeltaOp::Insert(Edge::new(5, 6)),
            ],
            false,
        );
        assert_eq!(merged, vec![Edge::new(5, 6)]);
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let meta_delta = DeltaSection {
            version: DELTA_FORMAT_VERSION,
            epoch: 2,
        };
        let mut meta = GridMeta {
            version: crate::format::DELTA_META_FORMAT_VERSION,
            num_vertices: 10,
            num_edges: 4,
            p: 1,
            weighted: false,
            indexed: true,
            sorted: true,
            dst_sorted: false,
            boundaries: vec![0, 10],
            block_edge_counts: vec![4],
            integrity: Some(IntegritySection::new(vec![])),
            delta: Some(meta_delta),
        };
        meta.seal();
        let manifest = DeltaManifest {
            version: DELTA_FORMAT_VERSION,
            epoch: 2,
            segments: IntegritySection::new(vec![ObjectEntry::of(
                segment_key("", 2, 0, 0),
                b"payload",
            )]),
            merged_num_edges: 5,
            merged_block_edge_counts: vec![5],
            degree_vertices: vec![3],
            degree_values: vec![2],
        };
        let back = DeltaManifest::from_bytes(&manifest.to_bytes(), &meta).unwrap();
        assert_eq!(back, manifest);

        // Epoch mismatch against the sealed meta: refused.
        let mut stale = manifest.clone();
        stale.epoch = 1;
        let err = DeltaManifest::from_bytes(&stale.to_bytes(), &meta).unwrap_err();
        assert!(err.to_string().contains("epoch"), "{err}");

        // Merged counts that do not sum: refused.
        let mut bad = manifest;
        bad.merged_num_edges = 99;
        assert!(DeltaManifest::from_bytes(&bad.to_bytes(), &meta).is_err());
    }

    #[test]
    fn keys_sort_by_epoch() {
        // The zero-padded epoch makes lexicographic key order == epoch
        // order, which the overlay relies on to replay ops in sequence.
        assert!(segment_key("", 2, 0, 0) < segment_key("", 10, 0, 0));
        assert!(manifest_key("", 9,) < manifest_key("", 11));
    }
}
