//! Core scalar types: vertex ids, edges and their on-disk byte codec.

/// Vertex identifier. `u32` suffices for the scaled-down stand-in datasets
/// (≤ 2^32 vertices) and halves edge bytes versus `u64`, exactly as the
/// published out-of-core systems do.
pub type VertexId = u32;

/// A directed edge, optionally weighted. Unweighted graphs carry
/// `weight == 1.0` in memory and omit the weight on disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 for unweighted graphs).
    pub weight: f32,
}

impl Edge {
    /// An unweighted edge (weight 1.0).
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge {
            src,
            dst,
            weight: 1.0,
        }
    }

    /// A weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: f32) -> Self {
        Edge { src, dst, weight }
    }
}

/// Byte codec for edges inside sub-block files.
///
/// Layout is little-endian `src:u32, dst:u32[, weight:f32]`. In the paper's
/// notation the edge structure size is `M = 8` and the weight size is
/// `W = 4` (0 when unweighted); the cost model reads both from here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCodec {
    weighted: bool,
}

impl EdgeCodec {
    /// Codec for unweighted (8-byte) edges.
    pub fn unweighted() -> Self {
        EdgeCodec { weighted: false }
    }

    /// Codec for weighted (12-byte) edges.
    pub fn weighted() -> Self {
        EdgeCodec { weighted: true }
    }

    /// Codec selected by a boolean flag.
    pub fn new(weighted: bool) -> Self {
        EdgeCodec { weighted }
    }

    /// Whether edges carry a weight on disk.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Bytes one encoded edge occupies (`M + W`).
    pub fn edge_bytes(&self) -> usize {
        if self.weighted {
            12
        } else {
            8
        }
    }

    /// Appends the encoding of `edge` to `out`.
    pub fn encode_into(&self, edge: &Edge, out: &mut Vec<u8>) {
        out.extend_from_slice(&edge.src.to_le_bytes());
        out.extend_from_slice(&edge.dst.to_le_bytes());
        if self.weighted {
            out.extend_from_slice(&edge.weight.to_le_bytes());
        }
    }

    /// Encodes a whole slice of edges.
    pub fn encode_all(&self, edges: &[Edge]) -> Vec<u8> {
        let mut out = Vec::with_capacity(edges.len() * self.edge_bytes());
        for e in edges {
            self.encode_into(e, &mut out);
        }
        out
    }

    /// Decodes the edge starting at `bytes` (must hold at least
    /// [`Self::edge_bytes`] bytes).
    pub fn decode(&self, bytes: &[u8]) -> Edge {
        let src = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let dst = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let weight = if self.weighted {
            f32::from_le_bytes(bytes[8..12].try_into().unwrap())
        } else {
            1.0
        };
        Edge { src, dst, weight }
    }

    /// Decodes a whole buffer of edges; panics if `bytes` is not a multiple
    /// of the edge size.
    pub fn decode_all(&self, bytes: &[u8]) -> Vec<Edge> {
        let sz = self.edge_bytes();
        assert_eq!(bytes.len() % sz, 0, "buffer is not a whole number of edges");
        bytes.chunks_exact(sz).map(|c| self.decode(c)).collect()
    }

    /// Decodes into a caller-provided buffer (cleared first), avoiding an
    /// allocation on hot paths.
    pub fn decode_all_into(&self, bytes: &[u8], out: &mut Vec<Edge>) {
        let sz = self.edge_bytes();
        assert_eq!(bytes.len() % sz, 0, "buffer is not a whole number of edges");
        out.clear();
        out.reserve(bytes.len() / sz);
        for c in bytes.chunks_exact(sz) {
            out.push(self.decode(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_roundtrip() {
        let codec = EdgeCodec::unweighted();
        let edges = vec![Edge::new(0, 1), Edge::new(7, 3), Edge::new(u32::MAX, 0)];
        let bytes = codec.encode_all(&edges);
        assert_eq!(bytes.len(), 24);
        assert_eq!(codec.decode_all(&bytes), edges);
    }

    #[test]
    fn weighted_roundtrip() {
        let codec = EdgeCodec::weighted();
        let edges = vec![Edge::weighted(1, 2, 0.5), Edge::weighted(3, 4, -7.25)];
        let bytes = codec.encode_all(&edges);
        assert_eq!(bytes.len(), 24);
        assert_eq!(codec.decode_all(&bytes), edges);
    }

    #[test]
    fn unweighted_decode_fills_unit_weight() {
        let codec = EdgeCodec::unweighted();
        let bytes = codec.encode_all(&[Edge::weighted(5, 6, 9.0)]);
        let decoded = codec.decode(&bytes);
        assert_eq!(decoded.weight, 1.0);
        assert_eq!((decoded.src, decoded.dst), (5, 6));
    }

    #[test]
    fn decode_all_into_reuses_buffer() {
        let codec = EdgeCodec::unweighted();
        let bytes = codec.encode_all(&[Edge::new(1, 2), Edge::new(3, 4)]);
        let mut buf = vec![Edge::new(9, 9); 100];
        codec.decode_all_into(&bytes, &mut buf);
        assert_eq!(buf, vec![Edge::new(1, 2), Edge::new(3, 4)]);
    }

    #[test]
    #[should_panic(expected = "whole number of edges")]
    fn decode_all_rejects_ragged_buffer() {
        EdgeCodec::unweighted().decode_all(&[0u8; 9]);
    }

    #[test]
    fn edge_sizes_match_paper_notation() {
        assert_eq!(EdgeCodec::unweighted().edge_bytes(), 8); // M
        assert_eq!(EdgeCodec::weighted().edge_bytes(), 12); // M + W
    }
}
