//! Compressed sparse row adjacency, used by the in-memory BSP reference
//! executor (the oracle every out-of-core engine is validated against) and
//! by the HUS-Graph baseline's in-memory row format.

use crate::graph::Graph;
use crate::types::VertexId;

/// CSR adjacency over the out-edges of a [`Graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<f32>,
}

impl Csr {
    /// Builds CSR from a graph's edge list (stable within a source: edges
    /// keep their relative input order after a counting-sort by source).
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices() as usize;
        let mut counts = vec![0u64; n + 1];
        for e in graph.edges() {
            counts[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let m = graph.num_edges() as usize;
        let mut targets = vec![0 as VertexId; m];
        let mut weights = vec![0f32; m];
        let mut cursor = counts;
        for e in graph.edges() {
            let at = cursor[e.src as usize] as usize;
            targets[at] = e.dst;
            weights[at] = e.weight;
            cursor[e.src as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        crate::narrow::from_usize(self.offsets.len() - 1, "csr vertex count")
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        crate::narrow::to_u32(
            self.offsets[v as usize + 1] - self.offsets[v as usize],
            "out-degree",
        )
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = self.range(v);
        &self.targets[a..b]
    }

    /// Out-neighbors of `v` zipped with edge weights.
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let (a, b) = self.range(v);
        self.targets[a..b]
            .iter()
            .copied()
            .zip(self.weights[a..b].iter().copied())
    }

    fn range(&self, v: VertexId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> Csr {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .add_edge(3, 3);
        Csr::from_graph(&b.build())
    }

    #[test]
    fn shape() {
        let csr = sample();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn neighbors_and_degrees() {
        let csr = sample();
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 3]);
        assert_eq!(csr.neighbors(3), &[3]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
    }

    #[test]
    fn weights_follow_edges() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 0.5).add_weighted_edge(0, 2, 1.5);
        let csr = Csr::from_graph(&b.build());
        let pairs: Vec<_> = csr.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 0.5), (2, 1.5)]);
    }

    #[test]
    fn edge_order_is_stable_within_source() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 5)
            .add_edge(0, 9)
            .add_edge(1, 2)
            .add_edge(1, 7);
        let csr = Csr::from_graph(&b.build());
        assert_eq!(csr.neighbors(1), &[5, 2, 7]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_graph(&GraphBuilder::new().build());
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
