//! Read-side handle over a preprocessed grid graph: whole-block streaming,
//! per-vertex selective reads via the sub-block index, and run coalescing
//! for the on-demand I/O model.

use crate::delta::DeltaOverlay;
use crate::format::{
    block_edges_key, block_index_key, decode_u32s, row_index_key, GridMeta, DEGREES_KEY, META_KEY,
};
use crate::partition::Intervals;
use crate::types::{Edge, EdgeCodec, VertexId};
use gsd_integrity::{CorruptionResponse, GridVerifier, VerifyPolicy};
use gsd_io::SharedStorage;
use std::sync::Arc;

/// Groups a sorted vertex list into clusters whose internal gaps are at
/// most `max_gap` ids. Selective readers issue one index-span request per
/// cluster: bridging a gap of `g` vertices costs `4·g` extra index bytes,
/// so `max_gap` should be about `seek_latency · B_sr / 4` — the point where
/// bridging beats seeking.
pub fn cluster_vertex_spans(sorted: &[VertexId], max_gap: u32) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for k in 1..sorted.len() {
        debug_assert!(sorted[k] > sorted[k - 1], "list must be strictly sorted");
        if sorted[k] - sorted[k - 1] > max_gap {
            spans.push(start..k);
            start = k;
        }
    }
    if !sorted.is_empty() {
        spans.push(start..sorted.len());
    }
    spans
}

/// One loaded sub-block.
#[derive(Debug, Clone, PartialEq)]
pub struct SubBlock {
    /// Source interval.
    pub i: u32,
    /// Destination interval.
    pub j: u32,
    /// The edges (sorted by `(src, dst)` in indexed formats).
    pub edges: Vec<Edge>,
}

/// The paper's `index(i, j)` structure: CSR offsets (edge indexes) over the
/// vertices of the indexed interval, locating each vertex's contiguous edge
/// range inside the sub-block payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubBlockIndex {
    /// First vertex of the indexed interval.
    pub start_vertex: VertexId,
    /// `len(interval) + 1` edge offsets.
    pub offsets: Vec<u32>,
}

impl SubBlockIndex {
    /// Edge-index range of vertex `v`'s edges within the sub-block.
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<u32> {
        let k = (v - self.start_vertex) as usize;
        self.offsets[k]..self.offsets[k + 1]
    }

    /// Number of edges vertex `v` owns in this sub-block.
    pub fn edge_count(&self, v: VertexId) -> u32 {
        let r = self.edge_range(v);
        r.end - r.start
    }

    /// Total edges covered by the index.
    pub fn total_edges(&self) -> u32 {
        *self.offsets.last().unwrap()
    }
}

/// A span of row `i`'s combined vertex-major index: resolves the edge
/// range of any covered vertex in **every** sub-block of the row from a
/// single storage request (see [`crate::format::row_index_key`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIndexSpan {
    /// First covered vertex.
    pub start_vertex: VertexId,
    /// Interval count `P` (row stride).
    pub p: u32,
    /// `(covered + 1) × P` offsets, vertex-major.
    pub offsets: Vec<u32>,
}

impl RowIndexSpan {
    /// Edge-index range of vertex `v`'s edges within sub-block `(i, j)`.
    pub fn edge_range(&self, v: VertexId, j: u32) -> std::ops::Range<u32> {
        let row = (v - self.start_vertex) as usize;
        let p = self.p as usize;
        let start = self.offsets[row * p + j as usize];
        let end = self.offsets[(row + 1) * p + j as usize];
        start..end
    }
}

/// Handle over a preprocessed grid graph stored behind a [`Storage`].
#[derive(Clone)]
pub struct GridGraph {
    storage: SharedStorage,
    prefix: String,
    meta: GridMeta,
    intervals: Intervals,
    codec: EdgeCodec,
    /// Verify-on-read hook (format v2, policy != Off). Shared across
    /// cloned handles so pipeline workers and the engine pool one memo of
    /// already-verified objects and one set of counters.
    verifier: Option<Arc<GridVerifier>>,
    /// Merged delta sub-blocks (format v4 with live segments). Every read
    /// primitive consults the overlay first, so engines, the prefetch
    /// pipeline and the serve daemon see base+delta as one logical
    /// sub-block. `meta` is patched to the merged shape at open.
    overlay: Option<Arc<DeltaOverlay>>,
}

impl GridGraph {
    /// Opens the grid stored at the root of `storage`.
    pub fn open(storage: SharedStorage) -> std::io::Result<Self> {
        Self::open_with_prefix(storage, "")
    }

    /// Opens the grid stored under `prefix` in `storage`.
    pub fn open_with_prefix(storage: SharedStorage, prefix: &str) -> std::io::Result<Self> {
        let meta_bytes = storage.read_all(&format!("{prefix}{META_KEY}"))?;
        let mut meta = GridMeta::from_bytes(&meta_bytes)?;
        // Format v4: materialize the merged delta sub-blocks and patch the
        // in-memory meta to the merged shape. Every segment and every base
        // payload the merge touches is checksum-verified here, once, so
        // the overlay needs no verify-on-read of its own.
        let overlay =
            crate::delta::load_overlay(storage.as_ref(), prefix, &mut meta)?.map(Arc::new);
        let intervals = meta.intervals();
        let codec = meta.codec();
        Ok(GridGraph {
            storage,
            prefix: prefix.to_owned(),
            meta,
            intervals,
            codec,
            verifier: None,
            overlay,
        })
    }

    /// The merged delta overlay, if this grid has live delta segments.
    pub fn overlay(&self) -> Option<&Arc<DeltaOverlay>> {
        self.overlay.as_ref()
    }

    /// The committed delta epoch (0 for a grid that has never been
    /// mutated). Ingest bumps this; it is baked into the sealed meta and
    /// therefore into checkpoint identity fingerprints.
    pub fn delta_epoch(&self) -> u64 {
        self.meta.delta.as_ref().map(|d| d.epoch).unwrap_or(0)
    }

    /// Turns verify-on-read on (or off, with [`VerifyPolicy::Off`]) for
    /// this handle and everything cloned from it afterwards. Requires a
    /// format v2 grid — v1 grids carry no checksums to verify against.
    pub fn set_verification(
        &mut self,
        policy: VerifyPolicy,
        response: CorruptionResponse,
    ) -> std::io::Result<()> {
        if policy.is_off() {
            self.verifier = None;
            return Ok(());
        }
        let Some(section) = &self.meta.integrity else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!(
                    "grid {:?} is format v{} without checksums; re-preprocess to verify reads",
                    self.prefix, self.meta.version
                ),
            ));
        };
        self.verifier = Some(Arc::new(GridVerifier::new(
            self.storage.clone(),
            self.prefix.clone(),
            section.clone(),
            policy,
            response,
        )));
        Ok(())
    }

    /// The active verifier, if verification is on.
    pub fn verifier(&self) -> Option<&Arc<GridVerifier>> {
        self.verifier.as_ref()
    }

    /// Snapshot of the verifier's counters (all zero when verification is
    /// off). Engines diff two snapshots to fold per-run verification
    /// totals into `RunStats`.
    pub fn verify_counters(&self) -> gsd_integrity::VerifyCounters {
        self.verifier
            .as_ref()
            .map(|v| v.counters())
            .unwrap_or_default()
    }

    /// Routes the verifier's trace events to `sink` (no-op when
    /// verification is off). Engines call this alongside their own
    /// `set_trace`.
    pub fn set_verify_sink(&self, sink: Arc<dyn gsd_trace::TraceSink>) {
        if let Some(v) = &self.verifier {
            v.set_sink(sink);
        }
    }

    /// The grid metadata.
    pub fn meta(&self) -> &GridMeta {
        &self.meta
    }

    /// The key prefix this grid lives under.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The interval partition.
    pub fn intervals(&self) -> &Intervals {
        &self.intervals
    }

    /// The edge codec.
    pub fn codec(&self) -> EdgeCodec {
        self.codec
    }

    /// Interval count `P`.
    pub fn p(&self) -> u32 {
        self.meta.p
    }

    /// `|V|`.
    pub fn num_vertices(&self) -> u32 {
        self.meta.num_vertices
    }

    /// `|E|`.
    pub fn num_edges(&self) -> u64 {
        self.meta.num_edges
    }

    /// The underlying storage (for stats snapshots).
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// I/O statistics of the underlying storage.
    pub fn io_stats(&self) -> Arc<gsd_io::IoStats> {
        self.storage.stats()
    }

    /// Storage key of sub-block `(i, j)`'s edges.
    pub fn edges_key(&self, i: u32, j: u32) -> String {
        block_edges_key(&self.prefix, i, j)
    }

    /// Storage key of sub-block `(i, j)`'s index.
    pub fn index_key(&self, i: u32, j: u32) -> String {
        block_index_key(&self.prefix, i, j)
    }

    /// Streams the whole sub-block `(i, j)` from storage.
    pub fn read_block(&self, i: u32, j: u32) -> std::io::Result<SubBlock> {
        let mut edges = Vec::new();
        self.read_block_into(i, j, &mut Vec::new(), &mut edges)?;
        Ok(SubBlock { i, j, edges })
    }

    /// Streams sub-block `(i, j)` into caller-provided buffers (no
    /// allocation when capacities suffice). Empty blocks skip the I/O
    /// entirely (their emptiness is known from the metadata).
    pub fn read_block_into(
        &self,
        i: u32,
        j: u32,
        scratch: &mut Vec<u8>,
        out: &mut Vec<Edge>,
    ) -> std::io::Result<()> {
        out.clear();
        if let Some(block) = self.overlay.as_ref().and_then(|o| o.block(i, j)) {
            self.codec.decode_all_into(&block.bytes, out);
            return Ok(());
        }
        let bytes = self.meta.block_bytes(i, j) as usize;
        if bytes == 0 {
            return Ok(());
        }
        scratch.clear();
        scratch.resize(bytes, 0);
        let key = self.edges_key(i, j);
        match &self.verifier {
            // Whole-object read: verified in place from the engine's own
            // accounted read — clean data costs zero extra I/O.
            Some(v) => v.read_whole_verified(&key, scratch)?,
            None => self.storage.read_at(&key, 0, scratch)?,
        }
        self.codec.decode_all_into(scratch, out);
        Ok(())
    }

    /// Reads the per-vertex index of sub-block `(i, j)`. Errors if the
    /// format was built without indexes.
    pub fn read_index(&self, i: u32, j: u32) -> std::io::Result<SubBlockIndex> {
        if !self.meta.indexed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "this grid format has no per-vertex indexes",
            ));
        }
        let indexed_interval = if self.meta.dst_sorted { j } else { i };
        let start_vertex = self.intervals.range(indexed_interval).start;
        if let Some(block) = self.overlay.as_ref().and_then(|o| o.block(i, j)) {
            return Ok(SubBlockIndex {
                start_vertex,
                offsets: block.offsets.clone(),
            });
        }
        let key = self.index_key(i, j);
        let mut bytes = self.storage.read_all(&key)?;
        if let Some(v) = &self.verifier {
            v.verify_owned(&key, &mut bytes)?;
        }
        let offsets = decode_u32s(&bytes)?;
        Ok(SubBlockIndex {
            start_vertex,
            offsets,
        })
    }

    /// Reads only the index entries covering vertices `lo..=hi` of
    /// sub-block `(i, j)` — one storage request proportional to the active
    /// *span* instead of the whole interval. The returned index can
    /// resolve `edge_range(v)` for any `v` in `lo..=hi`.
    pub fn read_index_span(
        &self,
        i: u32,
        j: u32,
        lo: VertexId,
        hi: VertexId,
    ) -> std::io::Result<SubBlockIndex> {
        if !self.meta.indexed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "this grid format has no per-vertex indexes",
            ));
        }
        let indexed_interval = if self.meta.dst_sorted { j } else { i };
        let start = self.intervals.range(indexed_interval).start;
        debug_assert!(lo >= start && hi >= lo);
        debug_assert!(hi < self.intervals.range(indexed_interval).end);
        if let Some(block) = self.overlay.as_ref().and_then(|o| o.block(i, j)) {
            let first = (lo - start) as usize;
            let count = (hi - lo + 2) as usize;
            return Ok(SubBlockIndex {
                start_vertex: lo,
                offsets: block.offsets[first..first + count].to_vec(),
            });
        }
        let key = self.index_key(i, j);
        if let Some(v) = &self.verifier {
            // Partial read: the whole object is side-checked (unaccounted)
            // on first touch, then trusted for the rest of the run.
            v.ensure_verified(&key)?;
        }
        // Entries lo-start ..= hi-start+1 (the +1 fetches v=hi's end offset).
        let first = (lo - start) as u64;
        let count = (hi - lo + 2) as usize;
        let mut bytes = vec![0u8; count * 4];
        self.storage.read_at(&key, first * 4, &mut bytes)?;
        Ok(SubBlockIndex {
            start_vertex: lo,
            offsets: decode_u32s(&bytes)?,
        })
    }

    /// Reads the rows of the combined row index of interval `i` covering
    /// vertices `lo..=hi` — a single request that resolves those vertices'
    /// edge ranges in every sub-block `(i, *)`. Requires a source-sorted,
    /// indexed format.
    pub fn read_row_index_span(
        &self,
        i: u32,
        lo: VertexId,
        hi: VertexId,
    ) -> std::io::Result<RowIndexSpan> {
        if !self.meta.indexed || self.meta.dst_sorted {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "row indexes require a source-sorted, indexed grid format",
            ));
        }
        let start = self.intervals.range(i).start;
        debug_assert!(lo >= start && hi >= lo && hi < self.intervals.range(i).end);
        if let Some(row) = self.overlay.as_ref().and_then(|o| o.row(i)) {
            let p = self.meta.p as usize;
            let first_row = (lo - start) as usize;
            let rows = (hi - lo + 2) as usize;
            return Ok(RowIndexSpan {
                start_vertex: lo,
                p: self.meta.p,
                offsets: row[first_row * p..(first_row + rows) * p].to_vec(),
            });
        }
        let key = row_index_key(&self.prefix, i);
        if let Some(v) = &self.verifier {
            v.ensure_verified(&key)?;
        }
        let p = self.meta.p as usize;
        let first_row = (lo - start) as u64;
        let rows = (hi - lo + 2) as usize;
        let mut bytes = vec![0u8; rows * p * 4];
        self.storage
            .read_at(&key, first_row * p as u64 * 4, &mut bytes)?;
        Ok(RowIndexSpan {
            start_vertex: lo,
            p: self.meta.p,
            offsets: decode_u32s(&bytes)?,
        })
    }

    /// Reads the contiguous edge run `edge_start..edge_start+edge_count`
    /// (edge indexes) of sub-block `(i, j)` and appends the decoded edges
    /// to `out`. This is the primitive of the on-demand I/O model: one
    /// coalesced run of active vertices becomes one storage request.
    pub fn read_edge_run(
        &self,
        i: u32,
        j: u32,
        edge_start: u32,
        edge_count: u32,
        scratch: &mut Vec<u8>,
        out: &mut Vec<Edge>,
    ) -> std::io::Result<()> {
        if edge_count == 0 {
            return Ok(());
        }
        if let Some(block) = self.overlay.as_ref().and_then(|o| o.block(i, j)) {
            let sz = self.codec.edge_bytes();
            let lo = edge_start as usize * sz;
            let hi = lo + edge_count as usize * sz;
            out.reserve(edge_count as usize);
            for chunk in block.bytes[lo..hi].chunks_exact(sz) {
                out.push(self.codec.decode(chunk));
            }
            return Ok(());
        }
        let key = self.edges_key(i, j);
        if let Some(v) = &self.verifier {
            v.ensure_verified(&key)?;
        }
        let sz = self.codec.edge_bytes() as u64;
        scratch.clear();
        scratch.resize(edge_count as usize * sz as usize, 0);
        self.storage
            .read_at(&key, edge_start as u64 * sz, scratch)?;
        let base = out.len();
        out.reserve(edge_count as usize);
        for chunk in scratch.chunks_exact(sz as usize) {
            out.push(self.codec.decode(chunk));
        }
        debug_assert_eq!(out.len() - base, edge_count as usize);
        Ok(())
    }

    /// Reads the edges of a single vertex `v` from sub-block `(i, j)` using
    /// a previously loaded index.
    pub fn read_vertex_edges(
        &self,
        i: u32,
        j: u32,
        index: &SubBlockIndex,
        v: VertexId,
        scratch: &mut Vec<u8>,
        out: &mut Vec<Edge>,
    ) -> std::io::Result<()> {
        let range = index.edge_range(v);
        self.read_edge_run(i, j, range.start, range.end - range.start, scratch, out)
    }

    /// Loads the out-degree table.
    pub fn load_out_degrees(&self) -> std::io::Result<Vec<u32>> {
        let key = format!("{}{}", self.prefix, DEGREES_KEY);
        let mut bytes = self.storage.read_all(&key)?;
        if let Some(v) = &self.verifier {
            v.verify_owned(&key, &mut bytes)?;
        }
        let mut degrees = decode_u32s(&bytes)?;
        if let Some(overlay) = &self.overlay {
            overlay.patch_degrees(&mut degrees);
        }
        Ok(degrees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, GraphKind};
    use crate::graph::Graph;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gsd_io::MemStorage;

    fn setup(p: u32) -> (Graph, GridGraph) {
        let g = GeneratorConfig::new(GraphKind::RMat, 200, 1000, 11).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("").with_intervals(p),
        )
        .unwrap();
        let grid = GridGraph::open(storage).unwrap();
        (g, grid)
    }

    #[test]
    fn open_reads_meta() {
        let (g, grid) = setup(4);
        assert_eq!(grid.num_vertices(), g.num_vertices());
        assert_eq!(grid.num_edges(), g.num_edges());
        assert_eq!(grid.p(), 4);
    }

    #[test]
    fn read_all_blocks_recovers_every_edge() {
        let (g, grid) = setup(4);
        let mut total = 0u64;
        let mut all: Vec<(u32, u32)> = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let block = grid.read_block(i, j).unwrap();
                total += block.edges.len() as u64;
                all.extend(block.edges.iter().map(|e| (e.src, e.dst)));
            }
        }
        assert_eq!(total, g.num_edges());
        let mut expect: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        all.sort_unstable();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn vertex_edges_match_graph() {
        let (g, grid) = setup(3);
        let intervals = grid.intervals().clone();
        // Adjacency from the raw graph, per (vertex, dst-interval).
        // BTreeMap keeps the removal walk below in deterministic
        // coordinate order (GSD007 discipline, even in tests).
        let mut expect: std::collections::BTreeMap<(u32, u32), Vec<u32>> = Default::default();
        for e in g.edges() {
            expect
                .entry((e.src, intervals.interval_of(e.dst)))
                .or_default()
                .push(e.dst);
        }
        let mut scratch = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                let idx = grid.read_index(i, j).unwrap();
                for v in intervals.range(i) {
                    let mut out = Vec::new();
                    grid.read_vertex_edges(i, j, &idx, v, &mut scratch, &mut out)
                        .unwrap();
                    let mut got: Vec<u32> = out.iter().map(|e| e.dst).collect();
                    got.sort_unstable();
                    let mut want = expect.remove(&(v, j)).unwrap_or_default();
                    want.sort_unstable();
                    assert_eq!(got, want, "vertex {v} block ({i},{j})");
                }
            }
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn empty_block_read_skips_io() {
        // A graph with edges only inside interval 0.
        let mut b = crate::graph::GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 0).ensure_vertices(100);
        let g = b.build();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("").with_intervals(2),
        )
        .unwrap();
        let grid = GridGraph::open(storage.clone()).unwrap();
        storage.stats().reset();
        let block = grid.read_block(1, 1).unwrap();
        assert!(block.edges.is_empty());
        assert_eq!(
            storage.stats().read_bytes(),
            0,
            "empty block must not touch storage"
        );
    }

    #[test]
    fn read_edge_run_appends() {
        let (_, grid) = setup(1);
        let idx = grid.read_index(0, 0).unwrap();
        let total = idx.total_edges();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        grid.read_edge_run(0, 0, 0, total / 2, &mut scratch, &mut out)
            .unwrap();
        grid.read_edge_run(0, 0, total / 2, total - total / 2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len() as u32, total);
        let whole = grid.read_block(0, 0).unwrap();
        assert_eq!(out, whole.edges);
    }

    #[test]
    fn cluster_spans_split_on_gaps() {
        use super::cluster_vertex_spans;
        let list = [1u32, 2, 3, 50, 51, 200];
        let spans = cluster_vertex_spans(&list, 10);
        assert_eq!(spans, vec![0..3, 3..5, 5..6]);
        let spans = cluster_vertex_spans(&list, 1000);
        assert_eq!(spans, vec![0..6]);
        assert!(cluster_vertex_spans(&[], 10).is_empty());
        assert_eq!(cluster_vertex_spans(&[7], 0), vec![0..1]);
    }

    #[test]
    fn index_span_matches_full_index() {
        let (_, grid) = setup(3);
        let intervals = grid.intervals().clone();
        for i in 0..3 {
            let range = intervals.range(i);
            if range.is_empty() {
                continue;
            }
            for j in 0..3 {
                let full = grid.read_index(i, j).unwrap();
                let lo = range.start + (range.end - range.start) / 4;
                let hi = range.end - 1 - (range.end - range.start) / 4;
                let span = grid.read_index_span(i, j, lo, hi).unwrap();
                for v in lo..=hi {
                    assert_eq!(
                        span.edge_range(v),
                        full.edge_range(v),
                        "v={v} block ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn index_span_reads_fewer_bytes_than_full_index() {
        let (_, grid) = setup(2);
        let stats = grid.storage().stats();
        stats.reset();
        let _ = grid.read_index(0, 0).unwrap();
        let full_bytes = stats.snapshot().read_bytes();
        stats.reset();
        let lo = grid.intervals().range(0).start;
        let _ = grid.read_index_span(0, 0, lo, lo + 3).unwrap();
        let span_bytes = stats.snapshot().read_bytes();
        assert_eq!(span_bytes, 5 * 4);
        assert!(span_bytes < full_bytes);
    }

    #[test]
    fn row_index_span_matches_per_block_indexes() {
        let (_, grid) = setup(4);
        let intervals = grid.intervals().clone();
        for i in 0..4 {
            let range = intervals.range(i);
            if range.is_empty() {
                continue;
            }
            let span = grid
                .read_row_index_span(i, range.start, range.end - 1)
                .unwrap();
            for j in 0..4 {
                let block_idx = grid.read_index(i, j).unwrap();
                for v in range.clone() {
                    assert_eq!(
                        span.edge_range(v, j),
                        block_idx.edge_range(v),
                        "v={v} block ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn row_index_span_is_one_request() {
        let (_, grid) = setup(4);
        let stats = grid.storage().stats();
        stats.reset();
        let lo = grid.intervals().range(0).start;
        let _ = grid.read_row_index_span(0, lo, lo + 5).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.seq_read_ops + s.rand_read_ops, 1);
        assert_eq!(s.read_bytes(), 7 * 4 * 4); // 7 rows x P=4 x 4 bytes
    }

    #[test]
    fn row_index_on_dst_sorted_format_errors() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 100, 400, 2).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        let config = crate::preprocess::PreprocessConfig {
            sort_by_dst: true,
            ..crate::preprocess::PreprocessConfig::graphsd("")
        }
        .with_intervals(2);
        preprocess(&g, storage.as_ref(), &config).unwrap();
        let grid = GridGraph::open(storage).unwrap();
        assert!(grid.read_row_index_span(0, 0, 1).is_err());
    }

    #[test]
    fn index_on_unindexed_format_errors() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 50, 100, 1).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::lumos("").with_intervals(2),
        )
        .unwrap();
        let grid = GridGraph::open(storage).unwrap();
        assert!(grid.read_index(0, 0).is_err());
    }

    #[test]
    fn degrees_roundtrip() {
        let (g, grid) = setup(2);
        assert_eq!(grid.load_out_degrees().unwrap(), g.out_degrees());
    }

    #[test]
    fn open_missing_meta_errors() {
        let storage: SharedStorage = Arc::new(MemStorage::new());
        assert!(GridGraph::open(storage).is_err());
    }

    #[test]
    fn prefixed_grids_coexist() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 50, 100, 1).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("a/").with_intervals(2),
        )
        .unwrap();
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::lumos("b/").with_intervals(3),
        )
        .unwrap();
        let a = GridGraph::open_with_prefix(storage.clone(), "a/").unwrap();
        let b = GridGraph::open_with_prefix(storage, "b/").unwrap();
        assert_eq!(a.p(), 2);
        assert_eq!(b.p(), 3);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
