//! # gsd-graph — graph substrate for GraphSD
//!
//! Everything below the processing engines: the in-memory graph model,
//! synthetic graph generators standing in for the paper's datasets,
//! edge-list parsers, and — centrally — the paper's **2-D grid
//! representation** (§3.2): `P` vertex intervals, `P×P` sub-blocks where
//! sub-block `(i,j)` holds the edges from interval `i` to interval `j`
//! sorted by source vertex, plus a per-vertex offset index enabling
//! selective reads of a single vertex's edge list.
//!
//! The [`preprocess`] module implements the paper's preprocessing phase
//! (load → partition → sort → write, with a timing breakdown used by the
//! Figure 8 experiment) and [`grid`] provides the read-side handle engines
//! consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod delta;
pub mod format;
pub mod generators;
pub mod graph;
pub mod grid;
pub mod integrity;
pub mod narrow;
pub mod parsers;
pub mod partition;
pub mod preprocess;
pub mod types;

pub use csr::Csr;
pub use delta::{DeltaManifest, DeltaOp, DeltaOverlay};
pub use format::{
    block_edges_key, block_index_key, DeltaSection, GridMeta, DEGREES_KEY, DELTA_FORMAT_VERSION,
    DELTA_META_FORMAT_VERSION, META_KEY,
};
pub use generators::{GeneratorConfig, GraphKind};
pub use graph::{Graph, GraphBuilder};
pub use grid::{cluster_vertex_spans, GridGraph, SubBlock, SubBlockIndex};
pub use gsd_integrity::{CorruptionResponse, VerifyCounters, VerifyPolicy};
pub use integrity::{repair_grid, scrub_grid, RepairOutcome};
pub use parsers::{parse_edge_list, write_edge_list};
pub use partition::Intervals;
pub use preprocess::{preprocess, preprocess_text, PreprocessConfig, PreprocessReport};
pub use types::{Edge, EdgeCodec, VertexId};
