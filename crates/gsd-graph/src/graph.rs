//! In-memory edge-list graph used by generators, the preprocessor and the
//! BSP reference executor that the engines are tested against.

use crate::types::{Edge, VertexId};

/// An in-memory directed graph stored as an edge list.
///
/// This is the *input* representation: the preprocessor turns it into the
/// on-disk 2-D grid format, and the test oracle executes programs on it
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_vertices: u32,
    edges: Vec<Edge>,
    weighted: bool,
}

impl Graph {
    /// Builds a graph from parts. `num_vertices` must exceed every endpoint.
    pub fn from_edges(num_vertices: u32, edges: Vec<Edge>, weighted: bool) -> Self {
        debug_assert!(edges
            .iter()
            .all(|e| e.src < num_vertices && e.dst < num_vertices));
        Graph {
            num_vertices,
            edges,
            weighted,
        }
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges `|E|`.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Whether the graph carries meaningful edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Returns a copy with every edge also present in the reverse
    /// direction (used to make generated graphs effectively undirected for
    /// CC-style algorithms).
    pub fn symmetrized(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            edges.push(*e);
            edges.push(Edge {
                src: e.dst,
                dst: e.src,
                weight: e.weight,
            });
        }
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        edges.dedup_by_key(|e| (e.src, e.dst));
        Graph {
            num_vertices: self.num_vertices,
            edges,
            weighted: self.weighted,
        }
    }
}

/// Incremental builder that tracks the vertex-id high-water mark.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    max_vertex: Option<u32>,
    weighted: bool,
}

impl GraphBuilder {
    /// New empty builder for an unweighted graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty builder for a weighted graph.
    pub fn new_weighted() -> Self {
        GraphBuilder {
            weighted: true,
            ..Self::default()
        }
    }

    /// Adds an unweighted edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.push(Edge::new(src, dst))
    }

    /// Adds a weighted edge (marks the graph weighted).
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: f32) -> &mut Self {
        self.weighted = true;
        self.push(Edge::weighted(src, dst, weight))
    }

    fn push(&mut self, e: Edge) -> &mut Self {
        self.max_vertex = Some(self.max_vertex.unwrap_or(0).max(e.src).max(e.dst));
        self.edges.push(e);
        self
    }

    /// Ensures the graph has at least `n` vertices even if some are
    /// isolated.
    pub fn ensure_vertices(&mut self, n: u32) -> &mut Self {
        if n > 0 {
            self.max_vertex = Some(self.max_vertex.unwrap_or(0).max(n - 1));
        }
        self
    }

    /// Number of edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge has been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes the graph.
    pub fn build(self) -> Graph {
        let num_vertices = self.max_vertex.map(|m| m + 1).unwrap_or(0);
        Graph::from_edges(num_vertices, self.edges, self.weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(2, 3);
        b.build()
    }

    #[test]
    fn builder_tracks_vertex_count() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_weighted());
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn ensure_vertices_creates_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).ensure_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degrees()[9], 0);
    }

    #[test]
    fn weighted_edge_marks_graph() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 2.5);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn symmetrized_adds_reverse_edges_and_dedups() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 0).add_edge(1, 2);
        let g = b.build().symmetrized();
        let mut pairs: Vec<_> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }
}
