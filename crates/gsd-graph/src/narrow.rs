//! Checked narrowing conversions for vertex ids, interval counts and edge
//! offsets.
//!
//! Graph and offset arithmetic widens to `u64`/`usize` and then narrows
//! back to the `u32` vertex-id space. A bare `as u32` silently truncates on
//! out-of-range input (a corrupt grid file, a graph past 2³² vertices), so
//! `gsd-lint` rule **GSD006** bans it in graph/offset arithmetic and this
//! module is the designated checked-conversion helper: every narrowing
//! states what is being narrowed and fails loudly instead of wrapping.

/// Narrows `value` to `u32`, panicking with context if it does not fit.
/// Use where the value is bounded by construction (vertex ids, interval
/// counts) and overflow would mean corrupt input or a logic error.
#[track_caller]
pub fn to_u32(value: u64, what: &str) -> u32 {
    match u32::try_from(value) {
        Ok(v) => v,
        Err(_) => panic!("{what} {value} exceeds the u32 vertex-id space"),
    }
}

/// [`to_u32`] for `usize` lengths and indexes.
#[track_caller]
pub fn from_usize(value: usize, what: &str) -> u32 {
    match u32::try_from(value) {
        Ok(v) => v,
        Err(_) => panic!("{what} {value} exceeds the u32 vertex-id space"),
    }
}

/// [`to_u32`] for non-negative `i64` arithmetic (e.g. `rem_euclid`
/// results); negative values are rejected rather than reinterpreted.
#[track_caller]
pub fn from_i64(value: i64, what: &str) -> u32 {
    match u32::try_from(value) {
        Ok(v) => v,
        Err(_) => panic!("{what} {value} outside the u32 vertex-id space"),
    }
}

/// Narrows a non-negative float (e.g. a ceil'd square root) to `u32`,
/// panicking on NaN, negatives, or overflow.
#[track_caller]
pub fn from_f64(value: f64, what: &str) -> u32 {
    if !(0.0..=u32::MAX as f64).contains(&value) {
        panic!("{what} {value} outside the u32 vertex-id space");
    }
    value as u32
}

/// Narrows with saturation for values that are *tunings*, not ids — e.g.
/// an index-gap threshold derived from a byte budget, where clamping to
/// `u32::MAX` is the correct semantics rather than an error.
pub fn saturating_u32(value: u64) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(to_u32(42, "x"), 42);
        assert_eq!(from_usize(7, "x"), 7);
        assert_eq!(from_i64(9, "x"), 9);
        assert_eq!(from_f64(3.0, "x"), 3);
        assert_eq!(saturating_u32(5), 5);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(saturating_u32(u64::MAX), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32")]
    fn to_u32_panics_out_of_range() {
        to_u32(u64::MAX, "edge offset");
    }

    #[test]
    #[should_panic(expected = "outside the u32")]
    fn from_i64_rejects_negative() {
        from_i64(-1, "ring hop");
    }

    #[test]
    #[should_panic(expected = "outside the u32")]
    fn from_f64_rejects_nan() {
        from_f64(f64::NAN, "grid side");
    }
}
