//! The on-disk 2-D grid format: metadata, key naming and binary encodings.
//!
//! Layout under a key prefix (several formats can share one store):
//!
//! ```text
//! <prefix>meta.json               — GridMeta (JSON)
//! <prefix>degrees.bin             — out-degree per vertex, u32 LE
//! <prefix>blocks/b_<i>_<j>.edges  — sub-block (i,j) edges, sorted by (src,dst)
//! <prefix>blocks/b_<i>_<j>.idx    — CSR offsets per source vertex, u32 LE
//! ```
//!
//! The `.idx` file realizes the paper's `index(i, j)` structure: entry `k`
//! is the first edge (by index, not byte) of vertex `range(i).start + k`
//! within the sub-block, so one vertex's edge list is a single contiguous
//! byte range — the property GraphSD's on-demand I/O model relies on.

use crate::partition::Intervals;
use serde::{Deserialize, Serialize};

/// Key of the metadata object.
pub const META_KEY: &str = "meta.json";
/// Key of the out-degree table.
pub const DEGREES_KEY: &str = "degrees.bin";

/// Key of sub-block `(i, j)`'s edge payload under `prefix`.
pub fn block_edges_key(prefix: &str, i: u32, j: u32) -> String {
    format!("{prefix}blocks/b_{i}_{j}.edges")
}

/// Key of sub-block `(i, j)`'s per-vertex index under `prefix`.
pub fn block_index_key(prefix: &str, i: u32, j: u32) -> String {
    format!("{prefix}blocks/b_{i}_{j}.idx")
}

/// Key of row `i`'s combined vertex-major index under `prefix`.
///
/// Layout: for each vertex `v` of interval `i` (plus one terminator row),
/// `P` little-endian `u32`s — entry `j` is the edge offset of `v`'s first
/// edge inside sub-block `(i, j)`. One span read of rows `lo ..= hi+1`
/// resolves the edge ranges of vertices `lo..=hi` in **every** block of the
/// row, so a selective reader pays a single index request per active
/// cluster instead of one per sub-block.
pub fn row_index_key(prefix: &str, i: u32) -> String {
    format!("{prefix}blocks/r_{i}.ridx")
}

/// Serialized description of a preprocessed grid graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridMeta {
    /// Format version (bumped on incompatible changes).
    pub version: u32,
    /// Number of vertices `|V|`.
    pub num_vertices: u32,
    /// Number of edges `|E|`.
    pub num_edges: u64,
    /// Number of intervals `P`.
    pub p: u32,
    /// Whether edges carry 4-byte weights on disk.
    pub weighted: bool,
    /// Whether per-vertex `.idx` files were written (GraphSD and HUS need
    /// them; the Lumos-like format does not sort and has no index).
    pub indexed: bool,
    /// Whether each sub-block's edges are sorted by `(src, dst)`.
    pub sorted: bool,
    /// Whether blocks are sorted/indexed by destination instead of source
    /// (the HUS-Graph column copy).
    pub dst_sorted: bool,
    /// Interval boundaries (`P + 1` entries).
    pub boundaries: Vec<u32>,
    /// Edge count of each sub-block, row-major: entry `i * P + j` is
    /// sub-block `(i, j)`. Lets engines skip empty blocks without I/O.
    pub block_edge_counts: Vec<u64>,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

impl GridMeta {
    /// The interval partition.
    pub fn intervals(&self) -> Intervals {
        Intervals::from_boundaries(self.boundaries.clone())
    }

    /// The edge codec for this graph.
    pub fn codec(&self) -> crate::types::EdgeCodec {
        crate::types::EdgeCodec::new(self.weighted)
    }

    /// Edge count of sub-block `(i, j)`.
    pub fn block_edge_count(&self, i: u32, j: u32) -> u64 {
        self.block_edge_counts[(i * self.p + j) as usize]
    }

    /// Byte size of sub-block `(i, j)`'s edge payload.
    pub fn block_bytes(&self, i: u32, j: u32) -> u64 {
        self.block_edge_count(i, j) * self.codec().edge_bytes() as u64
    }

    /// Total bytes of all edge payloads (`|E| · (M + W)`).
    pub fn total_edge_bytes(&self) -> u64 {
        self.num_edges * self.codec().edge_bytes() as u64
    }

    /// Bytes of one vertex-value array with `n`-byte values (`|V| · N`).
    pub fn vertex_value_bytes(&self, n: u64) -> u64 {
        self.num_vertices as u64 * n
    }

    /// Serializes to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_pretty(self).expect("GridMeta serializes")
    }

    /// Parses from JSON bytes, validating shape invariants.
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        let meta: GridMeta = serde_json::from_slice(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if meta.version != FORMAT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported format version {}", meta.version),
            ));
        }
        if meta.boundaries.len() != meta.p as usize + 1
            || meta.block_edge_counts.len() != (meta.p * meta.p) as usize
            || meta.boundaries.last().copied() != Some(meta.num_vertices)
            || meta.block_edge_counts.iter().sum::<u64>() != meta.num_edges
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "inconsistent grid metadata",
            ));
        }
        Ok(meta)
    }
}

/// Encodes a `u32` slice little-endian (degree tables and `.idx` files).
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `u32` buffer; panics on ragged input.
pub fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    assert_eq!(bytes.len() % 4, 0, "buffer is not whole u32s");
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> GridMeta {
        GridMeta {
            version: FORMAT_VERSION,
            num_vertices: 10,
            num_edges: 6,
            p: 2,
            weighted: false,
            indexed: true,
            sorted: true,
            dst_sorted: false,
            boundaries: vec![0, 5, 10],
            block_edge_counts: vec![1, 2, 3, 0],
        }
    }

    #[test]
    fn meta_roundtrips_through_json() {
        let m = meta();
        let m2 = GridMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn meta_validation_rejects_inconsistencies() {
        let mut bad = meta();
        bad.block_edge_counts[0] = 99; // sum != num_edges
        assert!(GridMeta::from_bytes(&bad.to_bytes()).is_err());

        let mut bad = meta();
        bad.boundaries = vec![0, 5]; // wrong length
        assert!(GridMeta::from_bytes(&bad.to_bytes()).is_err());

        let mut bad = meta();
        bad.version = 999;
        assert!(GridMeta::from_bytes(&bad.to_bytes()).is_err());
    }

    #[test]
    fn block_accessors() {
        let m = meta();
        assert_eq!(m.block_edge_count(0, 1), 2);
        assert_eq!(m.block_edge_count(1, 0), 3);
        assert_eq!(m.block_bytes(1, 0), 24);
        assert_eq!(m.total_edge_bytes(), 48);
        assert_eq!(m.vertex_value_bytes(4), 40);
    }

    #[test]
    fn key_naming() {
        assert_eq!(block_edges_key("", 3, 7), "blocks/b_3_7.edges");
        assert_eq!(block_index_key("gsd/", 0, 0), "gsd/blocks/b_0_0.idx");
    }

    #[test]
    fn u32_codec_roundtrip() {
        let vals = vec![0u32, 1, 42, u32::MAX];
        assert_eq!(decode_u32s(&encode_u32s(&vals)), vals);
    }

    #[test]
    #[should_panic(expected = "whole u32s")]
    fn u32_decode_rejects_ragged() {
        decode_u32s(&[1, 2, 3]);
    }
}
