//! The on-disk 2-D grid format: metadata, key naming and binary encodings.
//!
//! Layout under a key prefix (several formats can share one store):
//!
//! ```text
//! <prefix>meta.json               — GridMeta (JSON)
//! <prefix>degrees.bin             — out-degree per vertex, u32 LE
//! <prefix>blocks/b_<i>_<j>.edges  — sub-block (i,j) edges, sorted by (src,dst)
//! <prefix>blocks/b_<i>_<j>.idx    — CSR offsets per source vertex, u32 LE
//! ```
//!
//! The `.idx` file realizes the paper's `index(i, j)` structure: entry `k`
//! is the first edge (by index, not byte) of vertex `range(i).start + k`
//! within the sub-block, so one vertex's edge list is a single contiguous
//! byte range — the property GraphSD's on-demand I/O model relies on.
//!
//! # Format versions
//!
//! * **v1** — the original layout above, no checksums.
//! * **v2** — identical data objects plus an `integrity` section in
//!   `meta.json`: one CRC32 + length per data object, a CRC over the
//!   entry list itself, and a whole-meta self-check CRC (see
//!   [`gsd_integrity::IntegritySection`]). The preprocessor writes v2;
//!   readers accept both (a v1 grid simply has nothing to verify
//!   against).
//! * **v3** — *reserved* for the planned compressed grid format
//!   (ROADMAP item 2). No writer exists; readers reject it by name so a
//!   future compressed grid can never be misread as something else.
//! * **v4** — a v2 grid that has accepted streaming mutations: the meta
//!   additionally carries a [`DeltaSection`] naming the delta segment
//!   encoding version and the current mutation epoch, and the store
//!   holds `delta/` objects (segments + manifest) layered over the base
//!   sub-blocks. See `crate::delta`.

use crate::partition::Intervals;
use gsd_integrity::{crc32, CorruptionError, IntegritySection};
use serde::{Deserialize, Serialize, Value};

/// Key of the metadata object.
pub const META_KEY: &str = "meta.json";
/// Key of the out-degree table.
pub const DEGREES_KEY: &str = "degrees.bin";

/// Key of sub-block `(i, j)`'s edge payload under `prefix`.
pub fn block_edges_key(prefix: &str, i: u32, j: u32) -> String {
    format!("{prefix}blocks/b_{i}_{j}.edges")
}

/// Key of sub-block `(i, j)`'s per-vertex index under `prefix`.
pub fn block_index_key(prefix: &str, i: u32, j: u32) -> String {
    format!("{prefix}blocks/b_{i}_{j}.idx")
}

/// Key of row `i`'s combined vertex-major index under `prefix`.
///
/// Layout: for each vertex `v` of interval `i` (plus one terminator row),
/// `P` little-endian `u32`s — entry `j` is the edge offset of `v`'s first
/// edge inside sub-block `(i, j)`. One span read of rows `lo ..= hi+1`
/// resolves the edge ranges of vertices `lo..=hi` in **every** block of the
/// row, so a selective reader pays a single index request per active
/// cluster instead of one per sub-block.
pub fn row_index_key(prefix: &str, i: u32) -> String {
    format!("{prefix}blocks/r_{i}.ridx")
}

/// Serialized description of a preprocessed grid graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GridMeta {
    /// Format version (bumped on incompatible changes).
    pub version: u32,
    /// Number of vertices `|V|`.
    pub num_vertices: u32,
    /// Number of edges `|E|`.
    pub num_edges: u64,
    /// Number of intervals `P`.
    pub p: u32,
    /// Whether edges carry 4-byte weights on disk.
    pub weighted: bool,
    /// Whether per-vertex `.idx` files were written (GraphSD and HUS need
    /// them; the Lumos-like format does not sort and has no index).
    pub indexed: bool,
    /// Whether each sub-block's edges are sorted by `(src, dst)`.
    pub sorted: bool,
    /// Whether blocks are sorted/indexed by destination instead of source
    /// (the HUS-Graph column copy).
    pub dst_sorted: bool,
    /// Interval boundaries (`P + 1` entries).
    pub boundaries: Vec<u32>,
    /// Edge count of each sub-block, row-major: entry `i * P + j` is
    /// sub-block `(i, j)`. Lets engines skip empty blocks without I/O.
    pub block_edge_counts: Vec<u64>,
    /// Per-object checksum manifest (format v2; `None` on v1 grids).
    pub integrity: Option<IntegritySection>,
    /// Delta-segment negotiation (format v4; `None` below v4).
    pub delta: Option<DeltaSection>,
}

/// Current format version (written by the preprocessor).
pub const FORMAT_VERSION: u32 = 2;
/// Oldest format version readers still accept.
pub const MIN_FORMAT_VERSION: u32 = 1;
/// Reserved for the planned compressed grid format (ROADMAP item 2).
/// There is no writer yet; readers reject it with a by-name error.
pub const COMPRESSED_FORMAT_VERSION: u32 = 3;
/// Meta version of delta-enabled grids: v2 plus a [`DeltaSection`].
/// Written the first time a grid accepts a mutation batch.
pub const DELTA_META_FORMAT_VERSION: u32 = 4;
/// Version of the delta segment *encoding* under `delta/`. Independent
/// of the meta version and negotiated via [`DeltaSection::version`], so
/// the segment layout can evolve without burning meta version numbers.
pub const DELTA_FORMAT_VERSION: u32 = 1;

/// The `delta` section of a v4 meta: which segment encoding the `delta/`
/// objects use and how many mutation batches the grid has absorbed.
///
/// The epoch is part of the serialized meta, so every ingest changes the
/// meta bytes — and with them `gsd_recover`'s `graph_fingerprint`, which
/// pins checkpoint manifests to one graph state. A checkpoint taken
/// before a mutation batch can therefore never be resumed against the
/// mutated graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSection {
    /// Delta segment encoding version ([`DELTA_FORMAT_VERSION`]).
    pub version: u32,
    /// Mutation epoch: number of ingested batches (0 = freshly
    /// preprocessed; compaction folds segments but keeps the epoch).
    pub epoch: u64,
}

// Hand-written (de)serialization: the `integrity` field is omitted when
// absent so v1 metas — which predate the field — parse, and v1 output
// stays byte-identical to what v1 writers produced. (The derived impl
// would require every field to be present.)
impl Serialize for GridMeta {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("version".to_string(), self.version.to_value()),
            ("num_vertices".to_string(), self.num_vertices.to_value()),
            ("num_edges".to_string(), self.num_edges.to_value()),
            ("p".to_string(), self.p.to_value()),
            ("weighted".to_string(), self.weighted.to_value()),
            ("indexed".to_string(), self.indexed.to_value()),
            ("sorted".to_string(), self.sorted.to_value()),
            ("dst_sorted".to_string(), self.dst_sorted.to_value()),
            ("boundaries".to_string(), self.boundaries.to_value()),
            (
                "block_edge_counts".to_string(),
                self.block_edge_counts.to_value(),
            ),
        ];
        if let Some(integrity) = &self.integrity {
            fields.push(("integrity".to_string(), integrity.to_value()));
        }
        if let Some(delta) = &self.delta {
            fields.push(("delta".to_string(), delta.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for GridMeta {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let field = |name| serde::value_field(v, name);
        Ok(GridMeta {
            version: u32::from_value(field("version")?)?,
            num_vertices: u32::from_value(field("num_vertices")?)?,
            num_edges: u64::from_value(field("num_edges")?)?,
            p: u32::from_value(field("p")?)?,
            weighted: bool::from_value(field("weighted")?)?,
            indexed: bool::from_value(field("indexed")?)?,
            sorted: bool::from_value(field("sorted")?)?,
            dst_sorted: bool::from_value(field("dst_sorted")?)?,
            boundaries: Vec::<u32>::from_value(field("boundaries")?)?,
            block_edge_counts: Vec::<u64>::from_value(field("block_edge_counts")?)?,
            integrity: match v.get("integrity") {
                Some(value) => Option::<IntegritySection>::from_value(value)?,
                None => None,
            },
            delta: match v.get("delta") {
                Some(value) => Option::<DeltaSection>::from_value(value)?,
                None => None,
            },
        })
    }
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

impl GridMeta {
    /// The interval partition.
    pub fn intervals(&self) -> Intervals {
        Intervals::from_boundaries(self.boundaries.clone())
    }

    /// The edge codec for this graph.
    pub fn codec(&self) -> crate::types::EdgeCodec {
        crate::types::EdgeCodec::new(self.weighted)
    }

    /// Edge count of sub-block `(i, j)`.
    pub fn block_edge_count(&self, i: u32, j: u32) -> u64 {
        self.block_edge_counts[(i * self.p + j) as usize]
    }

    /// Byte size of sub-block `(i, j)`'s edge payload.
    pub fn block_bytes(&self, i: u32, j: u32) -> u64 {
        self.block_edge_count(i, j) * self.codec().edge_bytes() as u64
    }

    /// Total bytes of all edge payloads (`|E| · (M + W)`).
    pub fn total_edge_bytes(&self) -> u64 {
        self.num_edges * self.codec().edge_bytes() as u64
    }

    /// Bytes of one vertex-value array with `n`-byte values (`|V| · N`).
    pub fn vertex_value_bytes(&self, n: u64) -> u64 {
        self.num_vertices as u64 * n
    }

    /// Serializes to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_pretty(self).expect("GridMeta serializes")
    }

    /// Seals the integrity self-check: records the CRC32 of this meta
    /// serialized with `meta_crc` zeroed. Must be the last mutation before
    /// [`Self::to_bytes`]; a no-op on v1 metas without a section.
    pub fn seal(&mut self) {
        if self.integrity.is_none() {
            return;
        }
        if let Some(section) = &mut self.integrity {
            section.meta_crc = 0;
        }
        let crc = crc32(&self.to_bytes());
        if let Some(section) = &mut self.integrity {
            section.meta_crc = crc;
        }
    }

    /// Self-checks a sealed meta: the integrity section must be internally
    /// consistent and `meta_crc` must match the meta's own serialization
    /// with that field zeroed. A no-op on v1 metas.
    pub fn verify_self(&self) -> Result<(), CorruptionError> {
        let Some(section) = &self.integrity else {
            return Ok(());
        };
        section.verify_section(META_KEY)?;
        let mut unsealed = self.clone();
        if let Some(s) = &mut unsealed.integrity {
            s.meta_crc = 0;
        }
        let actual = crc32(&unsealed.to_bytes());
        if actual != section.meta_crc {
            return Err(CorruptionError::manifest(
                META_KEY,
                format!(
                    "meta self-check crc mismatch (recorded {:#010x}, computed {actual:#010x})",
                    section.meta_crc
                ),
            ));
        }
        Ok(())
    }

    /// Parses from JSON bytes, negotiating the format version and
    /// validating shape invariants plus (v2) the integrity self-check.
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        if bytes.is_empty() {
            return Err(invalid("grid metadata is empty"));
        }
        let meta: GridMeta = serde_json::from_slice(bytes)
            .map_err(|e| invalid(format!("grid metadata failed to parse: {e}")))?;
        match meta.version {
            1 => {
                if meta.integrity.is_some() {
                    return Err(invalid(
                        "format v1 metadata must not carry an integrity section",
                    ));
                }
                if meta.delta.is_some() {
                    return Err(invalid("format v1 metadata must not carry a delta section"));
                }
            }
            2 => {
                if meta.integrity.is_none() {
                    return Err(invalid(
                        "format v2 metadata is missing its integrity section",
                    ));
                }
                if meta.delta.is_some() {
                    return Err(invalid("format v2 metadata must not carry a delta section"));
                }
            }
            COMPRESSED_FORMAT_VERSION => {
                return Err(invalid(format!(
                    "grid format version {COMPRESSED_FORMAT_VERSION} is reserved for the \
                     compressed grid format, which has no implementation yet"
                )));
            }
            DELTA_META_FORMAT_VERSION => {
                if meta.integrity.is_none() {
                    return Err(invalid(
                        "format v4 metadata is missing its integrity section",
                    ));
                }
                let Some(delta) = &meta.delta else {
                    return Err(invalid("format v4 metadata is missing its delta section"));
                };
                if delta.version != DELTA_FORMAT_VERSION {
                    return Err(invalid(format!(
                        "unsupported delta segment version {} (supported: {DELTA_FORMAT_VERSION})",
                        delta.version
                    )));
                }
            }
            v => {
                return Err(invalid(format!(
                    "unsupported grid format version {v} (supported: \
                     {MIN_FORMAT_VERSION}..={FORMAT_VERSION} and {DELTA_META_FORMAT_VERSION})"
                )));
            }
        }
        if meta.boundaries.len() != meta.p as usize + 1
            || meta.block_edge_counts.len() != (meta.p * meta.p) as usize
            || meta.boundaries.last().copied() != Some(meta.num_vertices)
            || meta.block_edge_counts.iter().sum::<u64>() != meta.num_edges
        {
            return Err(invalid("inconsistent grid metadata"));
        }
        meta.verify_self().map_err(CorruptionError::into_io)?;
        Ok(meta)
    }
}

/// Encodes a `u32` slice little-endian (degree tables and `.idx` files).
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `u32` buffer. Ragged input (a length that is
/// not a multiple of 4 — a truncated index or degree table) is a
/// structured `InvalidData` error, never a panic: storage contents are
/// untrusted input.
pub fn decode_u32s(bytes: &[u8]) -> std::io::Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(invalid(format!(
            "corrupt u32 buffer: {} bytes is not a whole number of u32s",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4) yields 4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_integrity::ObjectEntry;

    /// A v1 meta: no integrity section, as older writers produced.
    fn meta_v1() -> GridMeta {
        GridMeta {
            version: 1,
            num_vertices: 10,
            num_edges: 6,
            p: 2,
            weighted: false,
            indexed: true,
            sorted: true,
            dst_sorted: false,
            boundaries: vec![0, 5, 10],
            block_edge_counts: vec![1, 2, 3, 0],
            integrity: None,
            delta: None,
        }
    }

    /// A sealed v2 meta with a small manifest.
    fn meta_v2() -> GridMeta {
        let mut m = GridMeta {
            version: FORMAT_VERSION,
            integrity: Some(IntegritySection::new(vec![
                ObjectEntry::of("degrees.bin", b"degrees"),
                ObjectEntry::of("blocks/b_0_0.edges", b"edges"),
            ])),
            ..meta_v1()
        };
        m.seal();
        m
    }

    #[test]
    fn v1_meta_roundtrips_through_json() {
        let m = meta_v1();
        let m2 = GridMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, m2);
        assert!(m2.integrity.is_none());
    }

    #[test]
    fn v2_meta_roundtrips_through_json() {
        let m = meta_v2();
        let m2 = GridMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, m2);
        assert_eq!(m2.integrity.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn v1_serialization_has_no_integrity_field() {
        let json = String::from_utf8(meta_v1().to_bytes()).unwrap();
        assert!(!json.contains("integrity"), "{json}");
    }

    #[test]
    fn empty_and_garbage_bytes_are_descriptive_errors() {
        let err = GridMeta::from_bytes(b"").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("empty"), "{err}");

        let err = GridMeta::from_bytes(b"not json at all").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("failed to parse"), "{err}");

        // Valid JSON, wrong shape: names the missing field.
        let err = GridMeta::from_bytes(b"{\"version\": 2}").unwrap_err();
        assert!(err.to_string().contains("num_vertices"), "{err}");
    }

    #[test]
    fn unknown_version_names_the_supported_range() {
        let mut bad = meta_v1();
        bad.version = 999;
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err
            .to_string()
            .contains("unsupported grid format version 999"));
        assert!(err.to_string().contains("1..=2 and 4"), "{err}");
    }

    /// A sealed v4 meta: v2 plus a delta section at some epoch.
    fn meta_v4(epoch: u64) -> GridMeta {
        let mut m = meta_v2();
        m.version = DELTA_META_FORMAT_VERSION;
        m.delta = Some(DeltaSection {
            version: DELTA_FORMAT_VERSION,
            epoch,
        });
        m.seal();
        m
    }

    #[test]
    fn v4_meta_roundtrips_through_json() {
        let m = meta_v4(3);
        let m2 = GridMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, m2);
        assert_eq!(m2.delta.unwrap().epoch, 3);
    }

    #[test]
    fn v3_is_reserved_and_rejected_by_name() {
        let mut bad = meta_v2();
        bad.version = COMPRESSED_FORMAT_VERSION;
        bad.seal();
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("reserved for the compressed"),
            "{err}"
        );
    }

    #[test]
    fn v4_negotiation_requires_delta_and_integrity() {
        // v4 without a delta section: refused.
        let mut bad = meta_v2();
        bad.version = DELTA_META_FORMAT_VERSION;
        bad.seal();
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing its delta"), "{err}");

        // v4 with an unknown segment encoding: refused by version number.
        let mut bad = meta_v4(1);
        bad.delta.as_mut().unwrap().version = 9;
        bad.seal();
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported delta segment version 9"),
            "{err}"
        );

        // v2 carrying a delta section: a v2 writer cannot have produced it.
        let mut bad = meta_v4(1);
        bad.version = FORMAT_VERSION;
        bad.seal();
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("v2"), "{err}");
    }

    #[test]
    fn epoch_changes_the_meta_bytes() {
        // The checkpoint identity fingerprint is FNV over these bytes:
        // two epochs of the same grid must never serialize identically.
        assert_ne!(meta_v4(1).to_bytes(), meta_v4(2).to_bytes());
    }

    #[test]
    fn version_negotiation_requires_matching_integrity() {
        // v2 without a section: refused.
        let mut bad = meta_v1();
        bad.version = 2;
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing its integrity"), "{err}");

        // v1 with a section: refused (a v1 writer cannot have produced it).
        let mut bad = meta_v2();
        bad.version = 1;
        bad.seal();
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("v1"), "{err}");
    }

    #[test]
    fn meta_validation_rejects_inconsistencies() {
        let mut bad = meta_v1();
        bad.block_edge_counts[0] = 99; // sum != num_edges
        assert!(GridMeta::from_bytes(&bad.to_bytes()).is_err());

        let mut bad = meta_v1();
        bad.boundaries = vec![0, 5]; // wrong length
        assert!(GridMeta::from_bytes(&bad.to_bytes()).is_err());
    }

    #[test]
    fn self_check_catches_post_seal_tampering() {
        // A field changed after sealing (shape still valid): meta crc.
        let mut bad = meta_v2();
        bad.sorted = false;
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("meta self-check"), "{err}");

        // A manifest entry changed: section crc.
        let mut bad = meta_v2();
        bad.integrity.as_mut().unwrap().objects[0].crc ^= 1;
        let err = GridMeta::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("section crc"), "{err}");

        // Resealing legitimizes the change again.
        let mut ok = meta_v2();
        ok.sorted = false;
        ok.seal();
        GridMeta::from_bytes(&ok.to_bytes()).unwrap();
    }

    #[test]
    fn block_accessors() {
        let m = meta_v1();
        assert_eq!(m.block_edge_count(0, 1), 2);
        assert_eq!(m.block_edge_count(1, 0), 3);
        assert_eq!(m.block_bytes(1, 0), 24);
        assert_eq!(m.total_edge_bytes(), 48);
        assert_eq!(m.vertex_value_bytes(4), 40);
    }

    #[test]
    fn key_naming() {
        assert_eq!(block_edges_key("", 3, 7), "blocks/b_3_7.edges");
        assert_eq!(block_index_key("gsd/", 0, 0), "gsd/blocks/b_0_0.idx");
    }

    #[test]
    fn u32_codec_roundtrip() {
        let vals = vec![0u32, 1, 42, u32::MAX];
        assert_eq!(decode_u32s(&encode_u32s(&vals)).unwrap(), vals);
    }

    #[test]
    fn u32_decode_rejects_ragged() {
        let err = decode_u32s(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("whole number of u32s"), "{err}");
        assert_eq!(decode_u32s(&[]).unwrap(), Vec::<u32>::new());
    }
}
