//! Offline grid maintenance: whole-grid scrub and repair-from-source
//! (the format-aware half of `gsd scrub`).
//!
//! [`scrub_grid`] parses and self-checks the meta, then verifies every
//! manifest-covered object. [`repair_grid`] goes one step further: given
//! the original source graph it re-derives the payload of every corrupt
//! or missing object — preprocessing is deterministic, so a rebuilt
//! object is byte-identical to what the manifest recorded — and rewrites
//! only those. A corrupt `meta.json` itself is not repairable (it is the
//! root of trust); re-preprocess instead.

use crate::format::{
    block_edges_key, block_index_key, encode_u32s, row_index_key, GridMeta, DEGREES_KEY, META_KEY,
};
use crate::graph::Graph;
use crate::types::Edge;
use gsd_integrity::{scrub_objects, ObjectEntry, ScrubReport};
use gsd_io::Storage;
use std::collections::BTreeMap;

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads and self-checks the meta of the grid at `prefix`, requiring a
/// format with an integrity manifest (v2).
pub fn load_verifiable_meta(storage: &dyn Storage, prefix: &str) -> std::io::Result<GridMeta> {
    let bytes = storage.read_all(&format!("{prefix}{META_KEY}"))?;
    let meta = GridMeta::from_bytes(&bytes)?;
    if meta.integrity.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!(
                "grid {prefix:?} is format v{} without checksums; re-preprocess to scrub it",
                meta.version
            ),
        ));
    }
    Ok(meta)
}

/// Verifies every object of the grid at `prefix` against its manifest.
/// On a mutated grid (format v4 with a live delta epoch) the pass also
/// verifies every delta segment against the epoch manifest's own
/// integrity section, so the report speaks for the whole logical grid.
/// Read-only; reads are unaccounted (maintenance, not workload I/O).
pub fn scrub_grid(storage: &dyn Storage, prefix: &str) -> std::io::Result<(GridMeta, ScrubReport)> {
    let meta = load_verifiable_meta(storage, prefix)?;
    let section = meta.integrity.as_ref().expect("checked by load");
    let mut report = scrub_objects(storage, prefix, section);
    if meta.delta.is_some() {
        let manifest = crate::delta::read_manifest(storage, prefix, &meta)?;
        report
            .objects
            .extend(scrub_objects(storage, prefix, &manifest.segments).objects);
    }
    Ok((meta, report))
}

/// What a repair pass did.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// Scrub findings before the repair.
    pub before: ScrubReport,
    /// Prefix-relative keys rewritten from the source graph.
    pub rewritten: Vec<String>,
    /// Scrub findings after the repair (clean on success).
    pub after: ScrubReport,
}

/// Repairs the grid at `prefix` by re-deriving corrupt or missing
/// objects from `graph` (the same source the grid was preprocessed
/// from). Fails without touching storage if a rebuilt payload disagrees
/// with the manifest — that means `graph` is *not* the original source,
/// and overwriting would corrupt the grid further.
pub fn repair_grid(
    storage: &dyn Storage,
    prefix: &str,
    graph: &Graph,
) -> std::io::Result<RepairOutcome> {
    let (meta, before) = scrub_grid(storage, prefix)?;
    let section = meta.integrity.as_ref().expect("checked by scrub");
    if before.is_clean() {
        return Ok(RepairOutcome {
            after: before.clone(),
            before,
            ..RepairOutcome::default()
        });
    }

    let payloads = rebuild_payloads(graph, &meta)?;
    // The rebuilt object set must be exactly the manifest's object set,
    // and every payload we are about to write must hash to what the
    // manifest recorded: anything else means the wrong source graph.
    if payloads.len() != section.len() {
        return Err(invalid(format!(
            "source graph rebuilds {} objects but the manifest covers {}",
            payloads.len(),
            section.len()
        )));
    }
    let mut rewritten = Vec::new();
    for report in before.corrupt() {
        let entry = section.lookup(&report.key).ok_or_else(|| {
            invalid(format!(
                "corrupt object {:?} is a delta segment, which is not derivable \
                 from the base source graph; re-ingest the batch or re-preprocess \
                 the merged edge list instead",
                report.key
            ))
        })?;
        let payload = payloads.get(&report.key).ok_or_else(|| {
            invalid(format!(
                "manifest object {:?} is not derivable from the source graph",
                report.key
            ))
        })?;
        let rebuilt = ObjectEntry::of(report.key.clone(), payload);
        if rebuilt != *entry {
            return Err(invalid(format!(
                "rebuilt object {:?} does not match the manifest \
                 (len {} crc {:#010x} vs recorded len {} crc {:#010x}): \
                 the provided source is not this grid's source",
                report.key, rebuilt.len, rebuilt.crc, entry.len, entry.crc
            )));
        }
        storage.create(&format!("{prefix}{}", report.key), payload)?;
        rewritten.push(report.key.clone());
    }
    storage.sync()?;

    let after = scrub_objects(storage, prefix, section);
    if !after.is_clean() {
        return Err(invalid(format!(
            "grid {prefix:?} still corrupt after repair ({} bad objects)",
            after.counts().1
        )));
    }
    Ok(RepairOutcome {
        before,
        rewritten,
        after,
    })
}

/// Re-derives every data object payload (prefix-relative key → bytes)
/// the preprocessor would write for `graph` under `meta`'s parameters.
/// Mirrors `preprocess` exactly — same bucketing order, same sorts — so
/// output is byte-identical. Repair uses it to rewrite corrupt objects;
/// compaction (`gsd-delta`) uses it to fold merged edges back into base
/// sub-blocks.
pub fn rebuild_payloads(
    graph: &Graph,
    meta: &GridMeta,
) -> std::io::Result<BTreeMap<String, Vec<u8>>> {
    if graph.num_vertices() != meta.num_vertices
        || graph.num_edges() != meta.num_edges
        || graph.is_weighted() != meta.weighted
    {
        return Err(invalid(format!(
            "source graph shape ({} vertices, {} edges, weighted={}) does not match \
             the grid meta ({}, {}, weighted={})",
            graph.num_vertices(),
            graph.num_edges(),
            graph.is_weighted(),
            meta.num_vertices,
            meta.num_edges,
            meta.weighted
        )));
    }
    let p = meta.p;
    let intervals = meta.intervals();
    let codec = meta.codec();
    let mut blocks: Vec<Vec<Edge>> = vec![Vec::new(); (p * p) as usize];
    for e in graph.edges() {
        let i = intervals.interval_of(e.src);
        let j = intervals.interval_of(e.dst);
        blocks[(i * p + j) as usize].push(*e);
    }
    if meta.sorted {
        for block in &mut blocks {
            if meta.dst_sorted {
                block.sort_unstable_by_key(|e| (e.dst, e.src, e.weight.to_bits()));
            } else {
                block.sort_unstable_by_key(|e| (e.src, e.dst, e.weight.to_bits()));
            }
        }
    }
    let mut payloads = BTreeMap::new();
    for i in 0..p {
        let row_len = intervals.len(i) as usize;
        let mut row_index = if meta.indexed && !meta.dst_sorted {
            vec![0u32; (row_len + 1) * p as usize]
        } else {
            Vec::new()
        };
        for j in 0..p {
            let block = &blocks[(i * p + j) as usize];
            payloads.insert(block_edges_key("", i, j), codec.encode_all(block));
            if meta.indexed {
                let index_interval = if meta.dst_sorted { j } else { i };
                let offsets = crate::preprocess::build_index(
                    block,
                    intervals.range(index_interval),
                    meta.dst_sorted,
                );
                if !meta.dst_sorted {
                    for (k, &off) in offsets.iter().enumerate() {
                        row_index[k * p as usize + j as usize] = off;
                    }
                }
                payloads.insert(block_index_key("", i, j), encode_u32s(&offsets));
            }
        }
        if !row_index.is_empty() {
            payloads.insert(row_index_key("", i), encode_u32s(&row_index));
        }
    }
    payloads.insert(DEGREES_KEY.to_string(), encode_u32s(&graph.out_degrees()));
    Ok(payloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, GraphKind};
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gsd_integrity::ObjectStatus;
    use gsd_io::MemStorage;

    fn source() -> Graph {
        GeneratorConfig::new(GraphKind::RMat, 150, 900, 5).generate()
    }

    #[test]
    fn clean_grid_scrubs_clean() {
        let g = source();
        let store = MemStorage::new();
        preprocess(
            &g,
            &store,
            &PreprocessConfig::graphsd("g/").with_intervals(3),
        )
        .unwrap();
        let (meta, report) = scrub_grid(&store, "g/").unwrap();
        assert!(report.is_clean());
        assert_eq!(report.objects.len(), meta.integrity.as_ref().unwrap().len());
    }

    #[test]
    fn scrub_finds_a_flipped_bit() {
        let g = source();
        let store = MemStorage::new();
        preprocess(&g, &store, &PreprocessConfig::graphsd("").with_intervals(2)).unwrap();
        store.write_at("blocks/b_1_0.edges", 5, &[0xFF]).unwrap();
        let (_, report) = scrub_grid(&store, "").unwrap();
        let bad: Vec<&str> = report.corrupt().map(|o| o.key.as_str()).collect();
        assert_eq!(bad, vec!["blocks/b_1_0.edges"]);
    }

    #[test]
    fn repair_restores_exact_bytes() {
        let g = source();
        let store = MemStorage::new();
        preprocess(
            &g,
            &store,
            &PreprocessConfig::graphsd("g/").with_intervals(3),
        )
        .unwrap();
        let pristine = store.read_all("g/blocks/b_0_1.edges").unwrap();
        store
            .write_at("g/blocks/b_0_1.edges", 2, &[0xAA, 0xBB])
            .unwrap();
        store.delete("g/degrees.bin").unwrap();
        let outcome = repair_grid(&store, "g/", &g).unwrap();
        assert_eq!(outcome.before.counts().1, 2);
        assert_eq!(
            outcome.rewritten,
            vec!["blocks/b_0_1.edges".to_string(), "degrees.bin".to_string()]
        );
        assert!(outcome.after.is_clean());
        assert_eq!(store.read_all("g/blocks/b_0_1.edges").unwrap(), pristine);
    }

    #[test]
    fn repair_refuses_a_mismatched_source() {
        let g = source();
        let store = MemStorage::new();
        preprocess(&g, &store, &PreprocessConfig::graphsd("").with_intervals(2)).unwrap();
        store.write_at("degrees.bin", 0, &[9]).unwrap();
        let wrong = GeneratorConfig::new(GraphKind::RMat, 150, 900, 6).generate();
        let err = repair_grid(&store, "", &wrong).unwrap_err();
        assert!(err.to_string().contains("not this grid's source"), "{err}");
        // And the corrupt object was left untouched.
        let (_, report) = scrub_grid(&store, "").unwrap();
        assert_eq!(report.counts().1, 1);
    }

    #[test]
    fn repair_covers_all_layouts() {
        for config in [
            PreprocessConfig::graphsd("x/").with_intervals(2),
            PreprocessConfig::lumos("x/").with_intervals(2),
            PreprocessConfig {
                sort_by_dst: true,
                ..PreprocessConfig::graphsd("x/")
            }
            .with_intervals(2),
        ] {
            let g = source();
            let store = MemStorage::new();
            preprocess(&g, &store, &config).unwrap();
            // Corrupt every object except the meta.
            let (meta, _) = scrub_grid(&store, "x/").unwrap();
            for entry in &meta.integrity.as_ref().unwrap().objects {
                if entry.len > 0 {
                    store
                        .write_at(&format!("x/{}", entry.key), entry.len / 2, &[0x5A])
                        .unwrap();
                }
            }
            let outcome = repair_grid(&store, "x/", &g).unwrap();
            assert!(outcome.after.is_clean());
            assert!(matches!(
                outcome.before.objects[0].status,
                ObjectStatus::Ok | ObjectStatus::ChecksumMismatch { .. }
            ));
        }
    }

    #[test]
    fn v1_grid_cannot_be_scrubbed() {
        let g = source();
        let store = MemStorage::new();
        preprocess(&g, &store, &PreprocessConfig::graphsd("").with_intervals(2)).unwrap();
        // Rewrite the meta as v1 (strip the section).
        let mut meta = GridMeta::from_bytes(&store.read_all(META_KEY).unwrap()).unwrap();
        meta.version = 1;
        meta.integrity = None;
        store.create(META_KEY, &meta.to_bytes()).unwrap();
        let err = scrub_grid(&store, "").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }
}
