//! Vertex-interval partitioning (the `P` disjoint intervals of §3.2).

use crate::types::VertexId;
use serde::{Deserialize, Serialize};

/// `P` disjoint, contiguous vertex intervals covering `0..num_vertices`.
///
/// Stored as `P + 1` boundaries; interval `i` is
/// `boundaries[i]..boundaries[i+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Intervals {
    boundaries: Vec<u32>,
}

impl Intervals {
    /// Splits `0..num_vertices` into `p` intervals of (near-)equal vertex
    /// count.
    pub fn uniform(num_vertices: u32, p: u32) -> Self {
        assert!(p >= 1, "need at least one interval");
        let mut boundaries = Vec::with_capacity(p as usize + 1);
        for i in 0..=p as u64 {
            boundaries.push(crate::narrow::to_u32(
                (num_vertices as u64 * i) / p as u64,
                "interval boundary",
            ));
        }
        Intervals { boundaries }
    }

    /// Splits into `p` intervals of (near-)equal **total degree**, so that
    /// sub-block rows stay balanced on power-law graphs. Every interval is
    /// non-empty when `num_vertices >= p`.
    pub fn degree_balanced(degrees: &[u32], p: u32) -> Self {
        assert!(p >= 1, "need at least one interval");
        let n = crate::narrow::from_usize(degrees.len(), "vertex count");
        if n == 0 || p == 1 {
            return Intervals {
                boundaries: vec![0, n],
            };
        }
        // Prefix degree mass: prefix[v] = sum of degrees of vertices < v.
        let mut prefix = Vec::with_capacity(degrees.len() + 1);
        let mut acc = 0u64;
        prefix.push(0u64);
        for &d in degrees {
            acc += d as u64;
            prefix.push(acc);
        }
        let total = acc.max(1);
        let mut boundaries = vec![0u32];
        for k in 1..p {
            // First vertex where the prefix mass reaches the k-th quantile.
            let target = total * k as u64 / p as u64;
            let mut cut =
                crate::narrow::from_usize(prefix.partition_point(|&m| m < target), "interval cut");
            // Keep intervals non-empty while leaving room for the rest
            // (possible whenever num_vertices >= p).
            let prev = *boundaries.last().unwrap();
            cut = cut.max(prev + 1).min(n.saturating_sub(p - k));
            boundaries.push(cut.max(prev)); // never go backwards
        }
        boundaries.push(n);
        debug_assert_eq!(boundaries.len(), p as usize + 1);
        debug_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        Intervals { boundaries }
    }

    /// Reconstructs intervals from raw boundaries (e.g. deserialized meta).
    pub fn from_boundaries(boundaries: Vec<u32>) -> Self {
        assert!(boundaries.len() >= 2, "need at least one interval");
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be sorted"
        );
        Intervals { boundaries }
    }

    /// Number of intervals `P`.
    pub fn count(&self) -> u32 {
        crate::narrow::from_usize(self.boundaries.len() - 1, "interval count")
    }

    /// Total number of vertices covered.
    pub fn num_vertices(&self) -> u32 {
        *self.boundaries.last().unwrap()
    }

    /// Half-open vertex range of interval `i`.
    pub fn range(&self, i: u32) -> std::ops::Range<u32> {
        self.boundaries[i as usize]..self.boundaries[i as usize + 1]
    }

    /// Number of vertices in interval `i`.
    pub fn len(&self, i: u32) -> u32 {
        let r = self.range(i);
        r.end - r.start
    }

    /// Whether interval `i` is empty.
    pub fn is_empty(&self, i: u32) -> bool {
        self.len(i) == 0
    }

    /// The interval containing vertex `v`.
    pub fn interval_of(&self, v: VertexId) -> u32 {
        debug_assert!(v < self.num_vertices(), "vertex {v} out of range");
        // partition_point returns the first boundary > v; intervals are
        // indexed from the boundary at or before v.
        crate::narrow::from_usize(
            self.boundaries.partition_point(|&b| b <= v) - 1,
            "interval index",
        )
    }

    /// Raw boundaries (`P + 1` entries), for serialization.
    pub fn boundaries(&self) -> &[u32] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_everything() {
        let iv = Intervals::uniform(10, 3);
        assert_eq!(iv.count(), 3);
        assert_eq!(iv.num_vertices(), 10);
        let total: u32 = (0..3).map(|i| iv.len(i)).sum();
        assert_eq!(total, 10);
        for v in 0..10 {
            let i = iv.interval_of(v);
            assert!(iv.range(i).contains(&v));
        }
    }

    #[test]
    fn uniform_is_balanced() {
        let iv = Intervals::uniform(1000, 7);
        for i in 0..7 {
            assert!((iv.len(i) as i64 - 1000 / 7).abs() <= 1);
        }
    }

    #[test]
    fn interval_of_boundary_cases() {
        let iv = Intervals::uniform(100, 4);
        assert_eq!(iv.interval_of(0), 0);
        assert_eq!(iv.interval_of(24), 0);
        assert_eq!(iv.interval_of(25), 1);
        assert_eq!(iv.interval_of(99), 3);
    }

    #[test]
    fn single_interval() {
        let iv = Intervals::uniform(5, 1);
        assert_eq!(iv.count(), 1);
        assert_eq!(iv.range(0), 0..5);
        assert_eq!(iv.interval_of(4), 0);
    }

    #[test]
    fn more_intervals_than_vertices_leaves_empties() {
        let iv = Intervals::uniform(2, 4);
        assert_eq!(iv.count(), 4);
        let total: u32 = (0..4).map(|i| iv.len(i)).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn degree_balanced_equalizes_degree_mass() {
        // Vertex 0 has huge degree; a uniform split would put half the mass
        // in interval 0.
        let mut degrees = vec![1u32; 100];
        degrees[0] = 100;
        let iv = Intervals::degree_balanced(&degrees, 4);
        assert_eq!(iv.count(), 4);
        assert_eq!(iv.num_vertices(), 100);
        let mass = |i: u32| -> u64 { iv.range(i).map(|v| degrees[v as usize] as u64).sum() };
        let total: u64 = (0..4).map(mass).sum();
        assert_eq!(total, 199);
        // First interval should be cut early (hub isolated-ish).
        assert!(iv.len(0) < 25, "len(0) = {}", iv.len(0));
        // Every interval non-empty.
        for i in 0..4 {
            assert!(!iv.is_empty(i));
        }
    }

    #[test]
    fn degree_balanced_handles_uniform_degrees() {
        let degrees = vec![3u32; 99];
        let iv = Intervals::degree_balanced(&degrees, 3);
        for i in 0..3 {
            assert_eq!(iv.len(i), 33);
        }
    }

    #[test]
    fn degree_balanced_with_zero_total_degree() {
        let degrees = vec![0u32; 10];
        let iv = Intervals::degree_balanced(&degrees, 3);
        assert_eq!(iv.count(), 3);
        assert_eq!(iv.num_vertices(), 10);
    }

    #[test]
    fn from_boundaries_roundtrip() {
        let iv = Intervals::uniform(50, 5);
        let iv2 = Intervals::from_boundaries(iv.boundaries().to_vec());
        assert_eq!(iv, iv2);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_boundaries_rejects_unsorted() {
        Intervals::from_boundaries(vec![0, 5, 3]);
    }
}
