//! Plain-text edge-list parsing and writing (the raw input format of the
//! paper's preprocessing phase, compatible with SNAP-style `.txt` dumps).

use crate::graph::{Graph, GraphBuilder};
use std::io::{BufRead, BufWriter, Write};

/// Parses a whitespace-separated edge list.
///
/// Each non-empty line is `src dst` or `src dst weight`; lines starting
/// with `#` or `%` are comments. Mixed weighted/unweighted lines are
/// allowed — the graph is weighted if any line carries a weight.
pub fn parse_edge_list<R: BufRead>(reader: R) -> std::io::Result<Graph> {
    let mut builder = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let bad = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {what}: {trimmed:?}", lineno + 1),
            )
        };
        let src: u32 = it
            .next()
            .ok_or_else(|| bad("missing source"))?
            .parse()
            .map_err(|_| bad("bad source vertex"))?;
        let dst: u32 = it
            .next()
            .ok_or_else(|| bad("missing destination"))?
            .parse()
            .map_err(|_| bad("bad destination vertex"))?;
        match it.next() {
            None => {
                builder.add_edge(src, dst);
            }
            Some(w) => {
                let weight: f32 = w.parse().map_err(|_| bad("bad weight"))?;
                builder.add_weighted_edge(src, dst, weight);
            }
        }
        if it.next().is_some() {
            return Err(bad("trailing fields"));
        }
    }
    Ok(builder.build())
}

/// Writes a graph as a text edge list (with weights iff the graph is
/// weighted). Inverse of [`parse_edge_list`].
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# graphsd edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        if graph.is_weighted() {
            writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
        } else {
            writeln!(w, "{} {}", e.src, e.dst)?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    #[test]
    fn parses_simple_list_with_comments() {
        let text = "# comment\n0 1\n\n% another\n2 3\n  4   5  \n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 6);
        assert!(!g.is_weighted());
        assert_eq!(g.edges()[2], Edge::new(4, 5));
    }

    #[test]
    fn parses_weights() {
        let g = parse_edge_list("0 1 2.5\n1 2 0.25\n".as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("0\n".as_bytes()).is_err());
        assert!(parse_edge_list("a b\n".as_bytes()).is_err());
        assert!(parse_edge_list("0 1 2 3\n".as_bytes()).is_err());
        assert!(parse_edge_list("0 1 w\n".as_bytes()).is_err());
        assert!(parse_edge_list("-1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = parse_edge_list("0 1\n5 2\n".as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
    }

    #[test]
    fn roundtrip_weighted() {
        let g = parse_edge_list("0 1 0.5\n5 2 3\n".as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert!(g2.is_weighted());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
