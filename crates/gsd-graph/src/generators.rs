//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's datasets (Table 3), which are
//! multi-billion-edge crawls we cannot ship: R-MAT/Kronecker graphs
//! reproduce the degree skew of the social networks (Twitter2010, SK2005,
//! Kron30) and the *web-locality* generator reproduces the host-clustered,
//! ID-contiguous structure of the web crawls (UK2007, UKUnion) that drives
//! both the `S_seq`/`S_ran` split and the fraction of `i < j` edges that
//! cross-iteration propagation exploits. All generators are deterministic
//! given a seed (ChaCha8).

use crate::graph::Graph;
use crate::types::Edge;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which synthetic family to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphKind {
    /// R-MAT with the classic social-network parameters
    /// `(a,b,c,d) = (0.57, 0.19, 0.19, 0.05)`.
    RMat,
    /// Kronecker per the Graph500 reference (same recursive scheme as
    /// R-MAT, Graph500 parameters) — the `Kron30` stand-in.
    Kronecker,
    /// Uniformly random (Erdős–Rényi G(n, m)).
    ErdosRenyi,
    /// Host-clustered web graph: contiguous intra-host runs plus a few
    /// long-range links; high ID locality, moderate diameter.
    WebLocality,
    /// 2-D grid with 4-neighborhood and random positive weights: the
    /// road-network-like workload used by the SSSP example.
    Grid2d,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Family to generate.
    pub kind: GraphKind,
    /// Number of vertices (rounded up to a power of two for the recursive
    /// families; exact for the others).
    pub vertices: u32,
    /// Target number of edges (exact; duplicates and self-loops allowed,
    /// as in the real crawls).
    pub edges: u64,
    /// RNG seed.
    pub seed: u64,
    /// Generate random edge weights in `(0, 1]` (needed by SSSP).
    pub weighted: bool,
}

impl GeneratorConfig {
    /// Convenience constructor.
    pub fn new(kind: GraphKind, vertices: u32, edges: u64, seed: u64) -> Self {
        GeneratorConfig {
            kind,
            vertices,
            edges,
            seed,
            weighted: false,
        }
    }

    /// Enables random weights.
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Runs the generator.
    pub fn generate(&self) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut graph = match self.kind {
            GraphKind::RMat => rmat(
                self.vertices,
                self.edges,
                [0.57, 0.19, 0.19, 0.05],
                &mut rng,
            ),
            GraphKind::Kronecker => rmat(
                self.vertices,
                self.edges,
                [0.57, 0.19, 0.19, 0.05],
                &mut rng,
            ),
            GraphKind::ErdosRenyi => erdos_renyi(self.vertices, self.edges, &mut rng),
            GraphKind::WebLocality => web_locality(self.vertices, self.edges, &mut rng),
            GraphKind::Grid2d => grid2d(crate::narrow::from_f64(
                (self.vertices as f64).sqrt().ceil(),
                "2d grid side",
            )),
        };
        if self.weighted {
            graph = randomize_weights(graph, &mut rng);
        }
        graph
    }
}

/// R-MAT / stochastic-Kronecker generator: each edge picks one of the four
/// quadrants recursively `log2(n)` times with probabilities `(a,b,c,d)`
/// (noise-perturbed per level, as in the Graph500 reference, to avoid
/// pathological staircases).
pub fn rmat(vertices: u32, edges: u64, probs: [f64; 4], rng: &mut ChaCha8Rng) -> Graph {
    assert!(vertices >= 2, "R-MAT needs at least two vertices");
    let scale = 32 - (vertices - 1).leading_zeros(); // ceil(log2(vertices))
    let n = 1u64 << scale;
    let [a, b, c, _] = probs;
    let mut list = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let (mut x0, mut x1) = (0u64, n);
        let (mut y0, mut y1) = (0u64, n);
        for _ in 0..scale {
            // ±10% multiplicative noise per level keeps the distribution
            // skewed but not self-similar-degenerate.
            let na = a * (0.9 + 0.2 * rng.gen::<f64>());
            let nb = b * (0.9 + 0.2 * rng.gen::<f64>());
            let nc = c * (0.9 + 0.2 * rng.gen::<f64>());
            let sum = na + nb + nc + probs[3] * (0.9 + 0.2 * rng.gen::<f64>());
            let r: f64 = rng.gen::<f64>() * sum;
            let (right, down) = if r < na {
                (false, false)
            } else if r < na + nb {
                (true, false)
            } else if r < na + nb + nc {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym;
            } else {
                y1 = ym;
            }
        }
        // Clamp into the requested vertex range (scale rounds up).
        let src = crate::narrow::to_u32(x0 % vertices as u64, "rmat source id");
        let dst = crate::narrow::to_u32(y0 % vertices as u64, "rmat destination id");
        list.push(Edge::new(src, dst));
    }
    Graph::from_edges(vertices, list, false)
}

/// G(n, m): `m` uniformly random directed edges.
pub fn erdos_renyi(vertices: u32, edges: u64, rng: &mut ChaCha8Rng) -> Graph {
    assert!(vertices >= 1);
    let list = (0..edges)
        .map(|_| Edge::new(rng.gen_range(0..vertices), rng.gen_range(0..vertices)))
        .collect();
    Graph::from_edges(vertices, list, false)
}

/// Web-crawl-like generator modeled on host structure of real crawls
/// (UK2007 / UKUnion): vertices are grouped into "hosts" of contiguous IDs
/// whose pages form forward chains with occasional skip links, plus "home"
/// links back to the host's front page, cross-links between *nearby* hosts'
/// front pages, and a sprinkle of uniform long-range links.
///
/// The resulting graph has the two properties the paper's mechanisms key
/// on for web graphs: **heavy ID locality** (chains give contiguous active
/// runs, i.e. large `S_seq`) and a **large effective diameter** (labels /
/// distances crawl along chains), which produces the long tail of
/// small-frontier iterations where selective loading wins.
pub fn web_locality(vertices: u32, edges: u64, rng: &mut ChaCha8Rng) -> Graph {
    assert!(vertices >= 2);
    let host_size = (vertices / 256).clamp(16, 512).min(vertices);
    let num_hosts = vertices.div_ceil(host_size);
    let mut list = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let host = rng.gen_range(0..num_hosts);
        let base = host * host_size;
        let len = host_size.min(vertices - base);
        let page = base + rng.gen_range(0..len);
        let roll: f64 = rng.gen();
        let (src, dst) = if roll < 0.9965 {
            // local window link: forward-biased short hop within the host
            // (real pages link overwhelmingly to nearby pages of the same
            // site, which is what gives crawls their ID locality and large
            // effective diameter)
            let pos = page - base;
            let hop = if rng.gen::<f64>() < 0.75 {
                1 + (rng.gen::<f64>().powi(2) * 7.0) as i64 // forward 1..=8
            } else {
                -(1 + (rng.gen::<f64>().powi(2) * 3.0) as i64) // back 1..=4
            };
            let to = crate::narrow::from_i64((pos as i64 + hop).rem_euclid(len as i64), "page hop");
            (page, base + to)
        } else if roll < 0.99995 {
            // cross-link from a page to a nearby host's front page (tight
            // host ring; only ~0.1 cross links per page so they do not
            // collapse the diameter)
            let delta = 1 + (rng.gen::<f64>().powi(2) * 3.0) as i64;
            let sign = if rng.gen::<bool>() { 1 } else { -1 };
            let other = crate::narrow::from_i64(
                (host as i64 + sign * delta).rem_euclid(num_hosts as i64),
                "host ring neighbor",
            );
            (page, (other * host_size).min(vertices - 1))
        } else {
            // vanishingly rare uniform long-range link
            (page, rng.gen_range(0..vertices))
        };
        list.push(Edge::new(src, dst));
    }
    Graph::from_edges(vertices, list, false)
}

/// `side × side` 2-D grid, edges in both directions between 4-neighbors,
/// unit weights (call [`randomize_weights`] for SSSP workloads).
pub fn grid2d(side: u32) -> Graph {
    assert!(side >= 1);
    let n = side * side;
    let mut list = Vec::with_capacity(4 * n as usize);
    let at = |r: u32, c: u32| r * side + c;
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                list.push(Edge::new(at(r, c), at(r, c + 1)));
                list.push(Edge::new(at(r, c + 1), at(r, c)));
            }
            if r + 1 < side {
                list.push(Edge::new(at(r, c), at(r + 1, c)));
                list.push(Edge::new(at(r + 1, c), at(r, c)));
            }
        }
    }
    Graph::from_edges(n, list, false)
}

/// Replaces every weight with a uniform draw from the 32 discrete levels
/// `1/32, 2/32, …, 1.0` and marks the graph weighted. Discrete levels are
/// the usual SSSP-benchmark choice (Graph500 SSSP, GAP): they keep the
/// number of relaxation rounds proportional to the hop diameter instead of
/// exploding into a near-continuous priority schedule.
pub fn randomize_weights(graph: Graph, rng: &mut ChaCha8Rng) -> Graph {
    let n = graph.num_vertices();
    let edges = graph
        .edges()
        .iter()
        .map(|e| Edge::weighted(e.src, e.dst, rng.gen_range(1..=32) as f32 / 32.0))
        .collect();
    Graph::from_edges(n, edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: GraphKind) -> GeneratorConfig {
        GeneratorConfig::new(kind, 1000, 8000, 42)
    }

    #[test]
    fn generators_hit_requested_sizes() {
        for kind in [
            GraphKind::RMat,
            GraphKind::Kronecker,
            GraphKind::ErdosRenyi,
            GraphKind::WebLocality,
        ] {
            let g = cfg(kind).generate();
            assert_eq!(g.num_edges(), 8000, "{kind:?}");
            assert_eq!(g.num_vertices(), 1000, "{kind:?}");
            assert!(g.edges().iter().all(|e| e.src < 1000 && e.dst < 1000));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cfg(GraphKind::RMat).generate();
        let b = cfg(GraphKind::RMat).generate();
        assert_eq!(a, b);
        let c = GeneratorConfig {
            seed: 43,
            ..cfg(GraphKind::RMat)
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_skewed_erdos_renyi_is_not() {
        let skewed = cfg(GraphKind::RMat).generate();
        let flat = cfg(GraphKind::ErdosRenyi).generate();
        let max_deg = |g: &Graph| *g.out_degrees().iter().max().unwrap();
        // R-MAT's hub should dwarf ER's max degree (mean degree 8).
        assert!(
            max_deg(&skewed) > 3 * max_deg(&flat),
            "{} vs {}",
            max_deg(&skewed),
            max_deg(&flat)
        );
    }

    #[test]
    fn web_locality_favors_short_forward_hops() {
        let g = cfg(GraphKind::WebLocality).generate();
        let near = g
            .edges()
            .iter()
            .filter(|e| (e.dst as i64 - e.src as i64).unsigned_abs() <= 64)
            .count();
        assert!(near as f64 > 0.5 * g.num_edges() as f64);
    }

    #[test]
    fn grid2d_shape() {
        let g = grid2d(4);
        assert_eq!(g.num_vertices(), 16);
        // 2 directions x (2 * side * (side-1)) = 48
        assert_eq!(g.num_edges(), 48);
        // Interior vertex has degree 4.
        assert_eq!(g.out_degrees()[5], 4);
        // Corner has degree 2.
        assert_eq!(g.out_degrees()[0], 2);
    }

    #[test]
    fn weighted_config_produces_positive_weights() {
        let g = cfg(GraphKind::ErdosRenyi).weighted().generate();
        assert!(g.is_weighted());
        assert!(g.edges().iter().all(|e| e.weight > 0.0 && e.weight <= 1.0));
    }
}
