//! # gsd-pipeline — the scheduler-driven prefetch executor
//!
//! GraphSD's state-aware scheduler decides *before* each iteration which
//! sub-blocks (FCIU) or coalesced edge runs (SCIU) will be read, yet a
//! synchronous engine issues every read on the compute thread: the disk
//! idles during scatter and the CPU idles during reads. This crate
//! overlaps the two phases without changing a single byte of what is
//! read, in what per-key order, or in what order results are consumed:
//!
//! * [`PrefetchExecutor`] owns a fixed pool of background workers over a
//!   cloned [`GridGraph`] handle (storage backends are `Send + Sync`, so
//!   workers read concurrently with the engine).
//! * The engine hands it one iteration's **schedule** — the exact request
//!   sequence the synchronous path would have issued — via
//!   [`PrefetchExecutor::begin_schedule`], then consumes results strictly
//!   in schedule order via [`PrefetchExecutor::take`].
//! * Lookahead is bounded by [`PipelineConfig::depth`] decoded requests
//!   (double-buffered slots by default): workers only claim a request
//!   when it is within `depth` of the consumer's position, so memory use
//!   is `O(depth)` blocks regardless of schedule length.
//!
//! ## Determinism
//!
//! The engines' results must be bit-identical with the pipeline on or
//! off, and on [`gsd_io::SimDisk`] the virtual-clock accounting must not
//! change either. Two invariants deliver that:
//!
//! 1. **Consumption order** equals schedule order — `take()` returns
//!    request `k` before request `k + 1`, so scatter processes edges in
//!    the synchronous order and floating-point accumulation is
//!    unchanged.
//! 2. **Per-key request order** equals schedule order — requests are
//!    routed to workers by a deterministic hash of their block
//!    coordinates, every request for one storage key lands in the same
//!    worker's FIFO queue, and a fallback read performed by the consumer
//!    blocks that queue until it completes. Storage backends classify
//!    sequential vs random *per key*, so interleaving across keys cannot
//!    perturb `IoStats` or `SimDisk`'s priced request costs.
//!
//! ## Backpressure and fallback
//!
//! `take()` has three outcomes, all surfaced to the tracing layer:
//! the request was already decoded ([`TakeOutcome::Hit`] /
//! `prefetch_hit`), a worker was mid-read and the consumer waited
//! ([`TakeOutcome::Stalled`] / `prefetch_stall`), or no worker had
//! started it and the consumer read it synchronously itself
//! ([`TakeOutcome::Fallback`], also traced as a stall — the pipeline
//! provided no overlap for it).
//!
//! ## Concurrency fence (GSD009)
//!
//! This crate is the workspace's **designated concurrency module**:
//! `std::thread::spawn`, `mpsc`-style channels and `Mutex`/`Condvar`
//! construction are fenced here by lint rule GSD009 (see `lint.toml`).
//! The upcoming parallel scatter/apply worker pool lives behind the
//! same fence — engine and kernel crates must consume parallelism
//! through this crate's deterministic executors, never spawn their own
//! threads, so the per-interval deterministic-merge discipline stays
//! auditable in one place. All shared state below is keyed or queued in
//! deterministic order (`Vec`/`VecDeque` indexed by worker and schedule
//! position — deliberately no hash-ordered containers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gsd_graph::{Edge, GridGraph};
use gsd_trace::{Stopwatch, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Prefetch pipeline sizing. `Default` reads the `GSD_PREFETCH_DEPTH` /
/// `GSD_PREFETCH_WORKERS` environment variables so a whole test suite can
/// be re-run with a different window without code changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// How many scheduled requests past the consumer's position workers
    /// may hold decoded at once. The minimum useful value is 1; the
    /// default of 2 is classic double buffering (one block being
    /// scattered, two in flight behind it).
    pub depth: usize,
    /// Background reader threads. More than a few rarely helps: requests
    /// for one storage key are pinned to one worker to preserve per-key
    /// order.
    pub workers: usize,
}

impl PipelineConfig {
    /// Default lookahead window (double buffering).
    pub const DEFAULT_DEPTH: usize = 2;
    /// Default worker-pool size.
    pub const DEFAULT_WORKERS: usize = 2;

    /// A config with the given depth and the default worker count.
    pub fn with_depth(depth: usize) -> Self {
        PipelineConfig {
            depth: depth.max(1),
            workers: Self::DEFAULT_WORKERS,
        }
    }

    /// Reads the process-wide prefetch switch: `None` unless the
    /// `GSD_PREFETCH` environment variable is set to something other
    /// than `0`/`false`/`off`/the empty string; depth and workers come
    /// from `GSD_PREFETCH_DEPTH` / `GSD_PREFETCH_WORKERS` (defaults 2/2).
    /// This is how the CI suite flips prefetching on for an entire test
    /// run.
    pub fn from_env() -> Option<Self> {
        let enabled = match std::env::var("GSD_PREFETCH") {
            Ok(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
            Err(_) => false,
        };
        if !enabled {
            return None;
        }
        let parse = |name: &str, default: usize| -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(default)
        };
        Some(PipelineConfig {
            depth: parse("GSD_PREFETCH_DEPTH", Self::DEFAULT_DEPTH),
            workers: parse("GSD_PREFETCH_WORKERS", Self::DEFAULT_WORKERS),
        })
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            depth: Self::DEFAULT_DEPTH,
            workers: Self::DEFAULT_WORKERS,
        }
    }
}

/// One scheduled read: either a whole sub-block or a coalesced edge run
/// inside one (the two primitives of the FCIU and SCIU paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchRequest {
    /// Stream the whole sub-block `(i, j)`.
    Block {
        /// Source interval (grid row).
        i: u32,
        /// Destination interval (grid column).
        j: u32,
    },
    /// Read the contiguous edge run `edge_start..edge_start + edge_count`
    /// of sub-block `(i, j)`.
    Run {
        /// Source interval (grid row).
        i: u32,
        /// Destination interval (grid column).
        j: u32,
        /// First edge index of the run.
        edge_start: u32,
        /// Number of edges in the run.
        edge_count: u32,
    },
}

impl PrefetchRequest {
    /// The block coordinates the request touches.
    pub fn coords(&self) -> (u32, u32) {
        match *self {
            PrefetchRequest::Block { i, j } | PrefetchRequest::Run { i, j, .. } => (i, j),
        }
    }

    fn bytes(&self, grid: &GridGraph) -> u64 {
        match *self {
            PrefetchRequest::Block { i, j } => grid.meta().block_bytes(i, j),
            PrefetchRequest::Run { edge_count, .. } => {
                edge_count as u64 * grid.codec().edge_bytes() as u64
            }
        }
    }

    /// Deterministic worker routing: every request for one block (hence
    /// one storage key) must go to the same worker so per-key request
    /// order is the schedule order. FNV-1a over the coordinates — stable
    /// across runs and platforms, unlike `HashMap`'s seeded hasher.
    fn route(&self, workers: usize) -> usize {
        let (i, j) = self.coords();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in i.to_le_bytes().into_iter().chain(j.to_le_bytes()) {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % workers as u64) as usize
    }
}

/// How [`PrefetchExecutor::take`] obtained the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeOutcome {
    /// The request was decoded and waiting: latency fully hidden.
    Hit,
    /// A worker was mid-read; the consumer blocked for this long.
    Stalled(Duration),
    /// No worker had started the request; the consumer read it
    /// synchronously itself, taking this long.
    Fallback(Duration),
}

impl TakeOutcome {
    /// Whether the pipeline had the data ready (a prefetch hit).
    pub fn is_hit(&self) -> bool {
        matches!(self, TakeOutcome::Hit)
    }

    /// Wall time the consumer was blocked acquiring the data.
    pub fn stall(&self) -> Duration {
        match *self {
            TakeOutcome::Hit => Duration::ZERO,
            TakeOutcome::Stalled(d) | TakeOutcome::Fallback(d) => d,
        }
    }
}

/// One consumed scheduled read.
#[derive(Debug)]
pub struct Prefetched {
    /// Source interval of the request.
    pub i: u32,
    /// Destination interval of the request.
    pub j: u32,
    /// The decoded edges, in on-disk order.
    pub edges: Vec<Edge>,
    /// Bytes the request read from storage.
    pub bytes: u64,
    /// How the data was obtained.
    pub outcome: TakeOutcome,
}

enum SlotState {
    /// Waiting in a worker's queue.
    Queued,
    /// A worker is reading it.
    Claimed,
    /// The consumer is reading it synchronously (fallback); it stays at
    /// the front of its worker's queue as a barrier so later same-key
    /// requests cannot overtake it.
    Stealing,
    /// Read finished (worker side); result awaits the consumer.
    Done(std::io::Result<Vec<Edge>>),
    /// Handed to the consumer.
    Consumed,
}

struct Slot {
    request: PrefetchRequest,
    bytes: u64,
    worker: usize,
    state: SlotState,
}

struct State {
    slots: Vec<Slot>,
    /// Per-worker FIFO queues of slot indexes, in schedule order.
    queues: Vec<VecDeque<usize>>,
    /// Next slot index `take()` will return.
    consumed: usize,
    /// Lookahead window: workers only claim slot `s` while
    /// `s < consumed + depth`.
    depth: usize,
    /// Bumped by `begin_schedule` so workers finishing a read for an
    /// abandoned schedule (consumer errored out mid-iteration) discard
    /// their result instead of writing into a recycled slot.
    generation: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

enum WorkerStep {
    Job(u64, usize, PrefetchRequest),
    Shutdown,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until worker `w` may start its next queued request (front
    /// of its queue, inside the lookahead window), or shutdown.
    fn next_job(&self, w: usize) -> WorkerStep {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return WorkerStep::Shutdown;
            }
            if let Some(&seq) = st.queues[w].front() {
                // A slot the consumer is fallback-reading stays at the
                // front as an ordering barrier; wait until it clears.
                let stealing = matches!(st.slots[seq].state, SlotState::Stealing);
                if !stealing && seq < st.consumed + st.depth {
                    st.queues[w].pop_front();
                    st.slots[seq].state = SlotState::Claimed;
                    return WorkerStep::Job(st.generation, seq, st.slots[seq].request);
                }
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self, generation: u64, seq: usize, result: std::io::Result<Vec<Edge>>) {
        let mut st = self.lock();
        if st.generation == generation {
            st.slots[seq].state = SlotState::Done(result);
        }
        drop(st);
        self.cv.notify_all();
    }
}

fn read_request(
    grid: &GridGraph,
    request: &PrefetchRequest,
    scratch: &mut Vec<u8>,
) -> std::io::Result<Vec<Edge>> {
    let mut edges = Vec::new();
    match *request {
        PrefetchRequest::Block { i, j } => grid.read_block_into(i, j, scratch, &mut edges)?,
        PrefetchRequest::Run {
            i,
            j,
            edge_start,
            edge_count,
        } => grid.read_edge_run(i, j, edge_start, edge_count, scratch, &mut edges)?,
    }
    Ok(edges)
}

/// The background prefetch executor: a fixed worker pool reading one
/// iteration's scheduled requests ahead of the consumer. See the crate
/// docs for the ordering and determinism contract.
pub struct PrefetchExecutor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    grid: GridGraph,
    config: PipelineConfig,
    trace: Arc<dyn TraceSink>,
    scratch: Vec<u8>,
}

impl PrefetchExecutor {
    /// Spawns the worker pool over a cloned grid handle.
    pub fn new(grid: GridGraph, config: PipelineConfig) -> std::io::Result<Self> {
        let config = PipelineConfig {
            depth: config.depth.max(1),
            workers: config.workers.max(1),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                slots: Vec::new(),
                queues: (0..config.workers).map(|_| VecDeque::new()).collect(),
                consumed: 0,
                depth: config.depth,
                generation: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let shared = shared.clone();
            let grid = grid.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gsd-prefetch-{w}"))
                .spawn(move || {
                    let mut scratch = Vec::new();
                    loop {
                        match shared.next_job(w) {
                            WorkerStep::Shutdown => return,
                            WorkerStep::Job(generation, seq, request) => {
                                let result = read_request(&grid, &request, &mut scratch);
                                shared.complete(generation, seq, result);
                            }
                        }
                    }
                })?;
            workers.push(handle);
        }
        Ok(PrefetchExecutor {
            shared,
            workers,
            grid,
            config,
            trace: gsd_trace::null_sink(),
            scratch: Vec::new(),
        })
    }

    /// Routes `prefetch_issued` / `prefetch_hit` / `prefetch_stall`
    /// events to `trace`.
    pub fn set_trace(&mut self, trace: Arc<dyn TraceSink>) {
        self.trace = trace;
    }

    /// The effective pipeline sizing.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Scheduled requests not yet consumed.
    pub fn remaining(&self) -> usize {
        let st = self.shared.lock();
        st.slots.len() - st.consumed
    }

    /// Installs one iteration's request schedule and wakes the workers.
    /// Any unconsumed requests of a previous schedule are abandoned
    /// (results of reads already in flight are discarded when they
    /// land); the engine only does this on an error path, since it
    /// otherwise consumes every request it schedules.
    pub fn begin_schedule(&mut self, requests: Vec<PrefetchRequest>) {
        if self.trace.enabled() {
            for r in &requests {
                let (i, j) = r.coords();
                self.trace.emit(&TraceEvent::PrefetchIssued {
                    i,
                    j,
                    bytes: r.bytes(&self.grid),
                });
            }
        }
        let mut st = self.shared.lock();
        st.generation += 1;
        for q in &mut st.queues {
            q.clear();
        }
        let workers = st.queues.len();
        st.slots = requests
            .into_iter()
            .map(|request| Slot {
                bytes: request.bytes(&self.grid),
                worker: request.route(workers),
                state: SlotState::Queued,
                request,
            })
            .collect();
        st.consumed = 0;
        for seq in 0..st.slots.len() {
            let w = st.slots[seq].worker;
            st.queues[w].push_back(seq);
        }
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Returns the next scheduled request's data, in schedule order.
    ///
    /// Decoded-and-waiting requests return immediately
    /// ([`TakeOutcome::Hit`]); a request mid-read blocks until the worker
    /// finishes ([`TakeOutcome::Stalled`]); a request no worker has
    /// started is read synchronously by the caller
    /// ([`TakeOutcome::Fallback`]), with its worker's queue blocked so
    /// per-key order is preserved.
    ///
    /// # Panics
    /// Never panics; calling with no scheduled request remaining is an
    /// `InvalidInput` error (an engine bug, surfaced loudly but safely).
    pub fn take(&mut self) -> std::io::Result<Prefetched> {
        let sw = Stopwatch::start();
        enum Plan {
            Ready(std::io::Result<Vec<Edge>>, u32, u32, u64, bool),
            Steal(usize, PrefetchRequest, u32, u32, u64),
        }
        let plan = {
            let mut st = self.shared.lock();
            let seq = st.consumed;
            if seq >= st.slots.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "prefetch take() past the end of the schedule",
                ));
            }
            let (i, j) = st.slots[seq].request.coords();
            let bytes = st.slots[seq].bytes;
            match st.slots[seq].state {
                SlotState::Queued => {
                    // Fallback: the consumer reads it itself. The slot
                    // stays at its queue front as an ordering barrier.
                    let request = st.slots[seq].request;
                    st.slots[seq].state = SlotState::Stealing;
                    Plan::Steal(seq, request, i, j, bytes)
                }
                _ => {
                    // Hit if already done, otherwise stall until the
                    // worker lands it.
                    let mut waited = false;
                    while !matches!(st.slots[seq].state, SlotState::Done(_)) {
                        waited = true;
                        st = self
                            .shared
                            .cv
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    let state = std::mem::replace(&mut st.slots[seq].state, SlotState::Consumed);
                    let SlotState::Done(result) = state else {
                        // The wait loop above exits only on Done; guard
                        // against the impossible without panicking in a
                        // hot-path crate.
                        return Err(std::io::Error::other("prefetch slot lost its result"));
                    };
                    st.consumed += 1;
                    drop(st);
                    self.shared.cv.notify_all();
                    Plan::Ready(result, i, j, bytes, waited)
                }
            }
        };
        match plan {
            Plan::Ready(result, i, j, bytes, waited) => {
                let edges = result?;
                let outcome = if waited {
                    TakeOutcome::Stalled(sw.elapsed())
                } else {
                    TakeOutcome::Hit
                };
                self.emit_take(i, j, bytes, &outcome, sw);
                Ok(Prefetched {
                    i,
                    j,
                    edges,
                    bytes,
                    outcome,
                })
            }
            Plan::Steal(seq, request, i, j, bytes) => {
                let result = read_request(&self.grid, &request, &mut self.scratch);
                let mut st = self.shared.lock();
                let w = st.slots[seq].worker;
                debug_assert_eq!(st.queues[w].front(), Some(&seq));
                st.queues[w].pop_front();
                st.slots[seq].state = SlotState::Consumed;
                st.consumed += 1;
                drop(st);
                self.shared.cv.notify_all();
                let edges = result?;
                let outcome = TakeOutcome::Fallback(sw.elapsed());
                self.emit_take(i, j, bytes, &outcome, sw);
                Ok(Prefetched {
                    i,
                    j,
                    edges,
                    bytes,
                    outcome,
                })
            }
        }
    }

    fn emit_take(&self, i: u32, j: u32, bytes: u64, outcome: &TakeOutcome, sw: Stopwatch) {
        if !self.trace.enabled() {
            return;
        }
        match outcome {
            TakeOutcome::Hit => self.trace.emit(&TraceEvent::PrefetchHit { i, j, bytes }),
            TakeOutcome::Stalled(_) | TakeOutcome::Fallback(_) => {
                self.trace.emit(&TraceEvent::PrefetchStall {
                    i,
                    j,
                    wait_us: sw.elapsed().as_micros() as u64,
                })
            }
        }
    }
}

impl Drop for PrefetchExecutor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked already poisoned nothing we rely on
            // (all state transitions are lock-scoped); surfacing the
            // panic here would abort the engine's error path, so join
            // failures are swallowed.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for PrefetchExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchExecutor")
            .field("depth", &self.config.depth)
            .field("workers", &self.config.workers)
            .field("remaining", &self.remaining())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_graph::{preprocess, GeneratorConfig, GraphKind, PreprocessConfig};
    use gsd_io::{DiskModel, IoStatsSnapshot, SharedStorage, SimDisk};

    fn sim_grid(seed: u64, p: u32) -> GridGraph {
        let g = GeneratorConfig::new(GraphKind::RMat, 400, 4000, seed).generate();
        let storage: SharedStorage = Arc::new(SimDisk::new(DiskModel::hdd()));
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("").with_intervals(p),
        )
        .unwrap();
        GridGraph::open(storage).unwrap()
    }

    fn full_schedule(grid: &GridGraph) -> Vec<PrefetchRequest> {
        let p = grid.p();
        let mut schedule = Vec::new();
        for j in 0..p {
            for i in 0..p {
                if grid.meta().block_edge_count(i, j) > 0 {
                    schedule.push(PrefetchRequest::Block { i, j });
                }
            }
        }
        schedule
    }

    fn sync_read(grid: &GridGraph, r: &PrefetchRequest) -> Vec<Edge> {
        let mut scratch = Vec::new();
        read_request(grid, r, &mut scratch).unwrap()
    }

    fn drain(
        exec: &mut PrefetchExecutor,
        schedule: &[PrefetchRequest],
        grid: &GridGraph,
    ) -> (u64, u64) {
        let (mut hits, mut misses) = (0u64, 0u64);
        for r in schedule {
            let got = exec.take().unwrap();
            assert_eq!((got.i, got.j), r.coords());
            assert_eq!(
                got.edges,
                sync_read(grid, r),
                "payload must match sync read"
            );
            assert_eq!(got.bytes, r.bytes(grid));
            if got.outcome.is_hit() {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        (hits, misses)
    }

    #[test]
    fn delivers_every_request_in_schedule_order() {
        let grid = sim_grid(7, 4);
        let schedule = full_schedule(&grid);
        assert!(schedule.len() > 4);
        let mut exec = PrefetchExecutor::new(grid.clone(), PipelineConfig::default()).unwrap();
        exec.begin_schedule(schedule.clone());
        let (hits, misses) = drain(&mut exec, &schedule, &grid);
        assert_eq!(hits + misses, schedule.len() as u64);
        assert_eq!(exec.remaining(), 0);
    }

    #[test]
    fn edge_runs_deliver_exact_spans() {
        let grid = sim_grid(11, 3);
        // Split block (0, 0)'s edges into two runs plus a whole-block
        // request for (1, 0); results must match the synchronous reads.
        let count = grid.meta().block_edge_count(0, 0);
        assert!(count >= 2, "test graph must populate block (0,0)");
        let half = gsd_graph::narrow::saturating_u32(count / 2);
        let schedule = vec![
            PrefetchRequest::Run {
                i: 0,
                j: 0,
                edge_start: 0,
                edge_count: half,
            },
            PrefetchRequest::Run {
                i: 0,
                j: 0,
                edge_start: half,
                edge_count: gsd_graph::narrow::saturating_u32(count) - half,
            },
            PrefetchRequest::Block { i: 1, j: 0 },
        ];
        let mut exec = PrefetchExecutor::new(grid.clone(), PipelineConfig::with_depth(1)).unwrap();
        exec.begin_schedule(schedule.clone());
        drain(&mut exec, &schedule, &grid);
    }

    #[test]
    fn take_past_schedule_end_is_an_error_not_a_panic() {
        let grid = sim_grid(3, 2);
        let mut exec = PrefetchExecutor::new(grid, PipelineConfig::default()).unwrap();
        exec.begin_schedule(Vec::new());
        let err = exec.take().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    /// The determinism contract: on a SimDisk, running the whole
    /// schedule through the concurrent pipeline must charge exactly the
    /// same virtual-clock time and the same sequential/random split as
    /// issuing the same requests synchronously — per-key order is what
    /// the pricing depends on, and the pipeline preserves it.
    #[test]
    fn sim_disk_accounting_matches_synchronous_reads() {
        let sync_stats: IoStatsSnapshot = {
            let grid = sim_grid(23, 4);
            let schedule = full_schedule(&grid);
            let before = grid.storage().stats().snapshot();
            for r in &schedule {
                sync_read(&grid, r);
            }
            grid.storage().stats().snapshot().since(&before)
        };
        for workers in [1usize, 2, 4] {
            let grid = sim_grid(23, 4);
            let schedule = full_schedule(&grid);
            let before = grid.storage().stats().snapshot();
            let mut exec =
                PrefetchExecutor::new(grid.clone(), PipelineConfig { depth: 3, workers }).unwrap();
            exec.begin_schedule(schedule.clone());
            for r in &schedule {
                // No payload re-read here: an extra verification read
                // would charge the virtual clock a second time.
                let got = exec.take().unwrap();
                assert_eq!((got.i, got.j), r.coords());
            }
            let piped = grid.storage().stats().snapshot().since(&before);
            assert_eq!(piped, sync_stats, "workers = {workers}");
        }
    }

    #[test]
    fn schedules_can_be_reused_across_iterations() {
        let grid = sim_grid(5, 3);
        let schedule = full_schedule(&grid);
        let mut exec = PrefetchExecutor::new(grid.clone(), PipelineConfig::default()).unwrap();
        for _ in 0..3 {
            exec.begin_schedule(schedule.clone());
            drain(&mut exec, &schedule, &grid);
        }
    }

    #[test]
    fn abandoned_schedule_is_discarded_safely() {
        let grid = sim_grid(9, 4);
        let schedule = full_schedule(&grid);
        let mut exec = PrefetchExecutor::new(grid.clone(), PipelineConfig::default()).unwrap();
        exec.begin_schedule(schedule.clone());
        // Consume only one request, then install a fresh schedule: the
        // in-flight remainder must be dropped without corrupting slots.
        exec.take().unwrap();
        exec.begin_schedule(schedule.clone());
        drain(&mut exec, &schedule, &grid);
    }

    #[test]
    fn trace_events_cover_every_take() {
        let grid = sim_grid(13, 4);
        let schedule = full_schedule(&grid);
        let ring = Arc::new(gsd_trace::RingRecorder::new(1 << 14));
        let mut exec = PrefetchExecutor::new(grid.clone(), PipelineConfig::default()).unwrap();
        exec.set_trace(ring.clone());
        exec.begin_schedule(schedule.clone());
        let (hits, misses) = drain(&mut exec, &schedule, &grid);
        assert_eq!(ring.count_kind("prefetch_issued"), schedule.len());
        assert_eq!(ring.count_kind("prefetch_hit") as u64, hits);
        assert_eq!(ring.count_kind("prefetch_stall") as u64, misses);
    }

    #[test]
    fn config_from_env_parses_the_switch_and_sizes() {
        // All env assertions live in one test: the variables are
        // process-global and nothing else in this crate reads them.
        std::env::remove_var("GSD_PREFETCH");
        assert_eq!(PipelineConfig::from_env(), None);
        std::env::set_var("GSD_PREFETCH", "0");
        assert_eq!(PipelineConfig::from_env(), None);
        std::env::set_var("GSD_PREFETCH", "off");
        assert_eq!(PipelineConfig::from_env(), None);
        std::env::set_var("GSD_PREFETCH", "1");
        std::env::remove_var("GSD_PREFETCH_DEPTH");
        std::env::remove_var("GSD_PREFETCH_WORKERS");
        assert_eq!(PipelineConfig::from_env(), Some(PipelineConfig::default()));
        std::env::set_var("GSD_PREFETCH_DEPTH", "5");
        std::env::set_var("GSD_PREFETCH_WORKERS", "3");
        assert_eq!(
            PipelineConfig::from_env(),
            Some(PipelineConfig {
                depth: 5,
                workers: 3
            })
        );
        // Nonsense sizes fall back to the defaults.
        std::env::set_var("GSD_PREFETCH_DEPTH", "zero");
        std::env::set_var("GSD_PREFETCH_WORKERS", "0");
        assert_eq!(PipelineConfig::from_env(), Some(PipelineConfig::default()));
        std::env::remove_var("GSD_PREFETCH");
        std::env::remove_var("GSD_PREFETCH_DEPTH");
        std::env::remove_var("GSD_PREFETCH_WORKERS");
    }

    #[test]
    fn routing_is_deterministic_and_key_stable() {
        let a = PrefetchRequest::Block { i: 3, j: 7 };
        let b = PrefetchRequest::Run {
            i: 3,
            j: 7,
            edge_start: 10,
            edge_count: 4,
        };
        for workers in 1..6 {
            // Same block => same worker, regardless of request shape.
            assert_eq!(a.route(workers), b.route(workers));
            assert!(a.route(workers) < workers);
        }
    }
}
