//! Personalized PageRank from a seed set, in the cumulative-delta
//! formulation of [`crate::PageRankDelta`]: after `k` rounds the rank is
//! the truncated power series
//! `rank_k(v) = (1 − α)/|S| · Σ_{t ≤ k} α^t · (walk-probability terms)`,
//! so a bounded iteration count is a principled bounded traversal — mass
//! reaches exactly the vertices within `k` hops of the seeds. This is the
//! `ppr` query the `gsd serve` daemon answers, and the oracle the serve
//! frontier-batching executor is validated against bit-for-bit.

use gsd_runtime::{InitialFrontier, ProgramContext, VertexProgram};

/// Personalized PageRank: teleport mass `(1 − α)/|S|` at each seed,
/// propagated along out-edges with continuation probability `α`.
///
/// Value packs `(rank, delta)`; only fresh deltas propagate, so the
/// frontier is exactly the set of vertices that received new mass — the
/// traversal never touches vertices farther than one hop beyond the mass
/// front.
#[derive(Debug, Clone)]
pub struct Ppr {
    /// Continuation (damping) probability, conventionally 0.85.
    pub alpha: f32,
    /// Seed vertices (deduplicated; order does not matter).
    pub seeds: Vec<u32>,
    /// Rounds to run — the traversal bound `k`.
    pub iterations: u32,
}

impl Ppr {
    /// PPR with the conventional α = 0.85.
    pub fn new(seeds: Vec<u32>, iterations: u32) -> Self {
        let mut seeds = seeds;
        seeds.sort_unstable();
        seeds.dedup();
        Ppr {
            alpha: 0.85,
            seeds,
            iterations,
        }
    }

    /// Per-seed teleport mass `(1 − α)/|S|`.
    fn base(&self) -> f32 {
        (1.0 - self.alpha) / self.seeds.len().max(1) as f32
    }

    fn is_seed(&self, v: u32) -> bool {
        self.seeds.binary_search(&v).is_ok()
    }
}

impl VertexProgram for Ppr {
    /// `(rank, delta)` packed into one cell.
    type Value = (f32, f32);
    type Accum = f32;

    fn name(&self) -> &'static str {
        "ppr"
    }

    fn init_value(&self, v: u32, _ctx: &ProgramContext) -> (f32, f32) {
        if self.is_seed(v) {
            let base = self.base();
            (base, base)
        } else {
            (0.0, 0.0)
        }
    }

    fn zero_accum(&self) -> f32 {
        0.0
    }

    #[inline]
    fn scatter(&self, u: u32, value: (f32, f32), _w: f32, ctx: &ProgramContext) -> Option<f32> {
        Some(value.1 / ctx.degree(u) as f32)
    }

    #[inline]
    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    #[inline]
    fn apply(
        &self,
        _v: u32,
        old: (f32, f32),
        accum: f32,
        _ctx: &ProgramContext,
    ) -> Option<(f32, f32)> {
        let delta = self.alpha * accum;
        if delta > 0.0 {
            Some((old.0 + delta, delta))
        } else {
            None
        }
    }

    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::Seeds(self.seeds.clone())
    }

    fn max_iterations(&self) -> Option<u32> {
        Some(self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_graph::{GeneratorConfig, GraphBuilder, GraphKind};
    use gsd_runtime::{Engine, ReferenceEngine, RunOptions};

    #[test]
    fn mass_stays_within_k_hops() {
        // 0 -> 1 -> 2 -> 3: one round from seed 0 reaches vertex 1 only.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Ppr::new(vec![0], 1)).unwrap().values;
        assert!(got[1].0 > 0.0, "one hop reached");
        assert_eq!(got[2].0, 0.0, "two hops not reached in one round");
        assert_eq!(got[3].0, 0.0);
    }

    #[test]
    fn seed_mass_splits_evenly() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let ppr = Ppr::new(vec![0, 1], 1);
        let got = engine.run_default(&ppr).unwrap().values;
        let base = 0.15 / 2.0;
        assert!((got[0].0 - base).abs() < 1e-7);
        assert!((got[1].0 - base).abs() < 1e-7);
        // Vertex 2 receives alpha * (base/1 + base/1).
        assert!((got[2].0 - 0.85 * 2.0 * base).abs() < 1e-7);
    }

    #[test]
    fn more_rounds_only_add_mass() {
        let g = GeneratorConfig::new(GraphKind::RMat, 200, 1500, 11).generate();
        let mut e1 = ReferenceEngine::new(&g);
        let mut e2 = ReferenceEngine::new(&g);
        let r1 = e1.run_default(&Ppr::new(vec![3], 2)).unwrap().values;
        let r2 = e2.run_default(&Ppr::new(vec![3], 6)).unwrap().values;
        for (v, (a, b)) in r1.iter().zip(r2.iter()).enumerate() {
            assert!(b.0 >= a.0 - 1e-9, "vertex {v}: rank must be monotone");
        }
    }

    #[test]
    fn runs_at_most_the_configured_rounds() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 80, 400, 3).generate();
        let engine = ReferenceEngine::new(&g);
        let (result, _) = engine.run_traced(&Ppr::new(vec![0], 3), &RunOptions::default());
        assert!(result.stats.iterations <= 3);
    }
}
