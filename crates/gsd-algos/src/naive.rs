//! Independent in-memory oracles the vertex programs are validated
//! against: dense power-iteration PageRank, binary-heap Dijkstra,
//! union-find components and queue-based BFS. These share no code with
//! the runtime's executors, so agreement is meaningful.

use gsd_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Dense power iteration: `rank = (1 − d) + d · Σ rank(u)/deg(u)`,
/// `iterations` rounds from all-ones, f64 internally.
pub fn naive_pagerank(graph: &Graph, damping: f32, iterations: u32) -> Vec<f32> {
    let n = graph.num_vertices() as usize;
    let deg = graph.out_degrees();
    let d = damping as f64;
    let mut rank = vec![1.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        for e in graph.edges() {
            next[e.dst as usize] += rank[e.src as usize] / deg[e.src as usize] as f64;
        }
        next.iter_mut().for_each(|x| *x = (1.0 - d) + d * *x);
        std::mem::swap(&mut rank, &mut next);
    }
    rank.into_iter().map(|x| x as f32).collect()
}

/// Union-find component labels: every vertex gets the **minimum vertex id**
/// of its (weakly-directed: edges treated as given) component.
pub fn naive_components(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for e in graph.edges() {
        let a = find(&mut parent, e.src);
        let b = find(&mut parent, e.dst);
        // Union by smaller id so the root IS the minimum label.
        match a.cmp(&b) {
            std::cmp::Ordering::Less => parent[b as usize] = a,
            std::cmp::Ordering::Greater => parent[a as usize] = b,
            std::cmp::Ordering::Equal => {}
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Binary-heap Dijkstra over non-negative weights.
pub fn naive_dijkstra(graph: &Graph, source: u32) -> Vec<f32> {
    let n = graph.num_vertices() as usize;
    // Adjacency.
    let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    for e in graph.edges() {
        adj[e.src as usize].push((e.dst, e.weight));
    }
    let mut dist = vec![f32::INFINITY; n];
    dist[source as usize] = 0.0;
    // (ordered-dist, vertex): f32 wrapped via total bits order on
    // non-negative values.
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let d = f32::from_bits(dbits);
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in &adj[u as usize] {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd.to_bits(), v)));
            }
        }
    }
    dist
}

/// Queue BFS depth labels (`u32::MAX` = unreached).
pub fn naive_bfs(graph: &Graph, source: u32) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in graph.edges() {
        adj[e.src as usize].push(e.dst);
    }
    let mut depth = vec![u32::MAX; n];
    depth[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_graph::GraphBuilder;

    #[test]
    fn dijkstra_on_triangle() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 5.0)
            .add_weighted_edge(0, 2, 1.0)
            .add_weighted_edge(2, 1, 1.0);
        let dist = naive_dijkstra(&b.build(), 0);
        assert_eq!(dist, vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn components_root_is_min_id() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 2).add_edge(2, 9).ensure_vertices(10);
        let labels = naive_components(&b.build());
        assert_eq!(labels[5], 2);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[9], 2);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn pagerank_mass_is_conserved_on_regular_graph() {
        // Directed 4-cycle: all in/out degrees 1 — ranks stay 1.0.
        let mut b = GraphBuilder::new();
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
        }
        let ranks = naive_pagerank(&b.build(), 0.85, 30);
        for r in ranks {
            assert!((r - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn bfs_depths() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .ensure_vertices(4);
        let d = naive_bfs(&b.build(), 0);
        assert_eq!(d, vec![0, 1, 1, u32::MAX]);
    }
}
