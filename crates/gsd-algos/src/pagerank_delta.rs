//! PageRank-Delta (the paper's PR-D workload): a PageRank variant where a
//! vertex re-activates only when its accumulated rank change exceeds a
//! threshold, so the frontier shrinks over iterations — the regime where
//! GraphSD's on-demand I/O model and SCIU shine.

use gsd_runtime::{InitialFrontier, ProgramContext, VertexProgram};

/// PR-D: vertex value packs `(rank, delta)`; only deltas above
/// [`PageRankDelta::threshold`] propagate.
///
/// With base `1 − d` initialization this converges to the same fixed point
/// as [`crate::PageRank`]: `rank = (1 − d) · Σ_k d^k (random-walk terms)`.
#[derive(Debug, Clone, Copy)]
pub struct PageRankDelta {
    /// Damping factor, conventionally 0.85.
    pub damping: f32,
    /// Minimum |delta| that keeps a vertex active.
    pub threshold: f32,
    /// Iteration cap (the paper runs 20).
    pub iterations: u32,
}

impl PageRankDelta {
    /// The paper's configuration: damping 0.85, 20 iterations.
    pub fn paper() -> Self {
        PageRankDelta {
            damping: 0.85,
            threshold: 5e-2,
            iterations: 20,
        }
    }

    /// Custom iteration count (threshold unchanged).
    pub fn with_iterations(iterations: u32) -> Self {
        PageRankDelta {
            iterations,
            ..Self::paper()
        }
    }
}

impl Default for PageRankDelta {
    fn default() -> Self {
        Self::paper()
    }
}

impl VertexProgram for PageRankDelta {
    /// `(rank, delta)` packed into one cell.
    type Value = (f32, f32);
    type Accum = f32;

    fn name(&self) -> &'static str {
        "pagerank-delta"
    }

    fn init_value(&self, _v: u32, _ctx: &ProgramContext) -> (f32, f32) {
        let base = 1.0 - self.damping;
        (base, base)
    }

    fn zero_accum(&self) -> f32 {
        0.0
    }

    #[inline]
    fn scatter(&self, u: u32, value: (f32, f32), _w: f32, ctx: &ProgramContext) -> Option<f32> {
        Some(value.1 / ctx.degree(u) as f32)
    }

    #[inline]
    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    #[inline]
    fn apply(
        &self,
        _v: u32,
        old: (f32, f32),
        accum: f32,
        _ctx: &ProgramContext,
    ) -> Option<(f32, f32)> {
        let delta = self.damping * accum;
        if delta.abs() > self.threshold {
            Some((old.0 + delta, delta))
        } else {
            None
        }
    }

    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::All
    }

    fn max_iterations(&self) -> Option<u32> {
        Some(self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_pagerank;
    use gsd_graph::{GeneratorConfig, GraphKind};
    use gsd_runtime::{Engine, ReferenceEngine, RunOptions};

    #[test]
    fn converges_to_the_pagerank_fixed_point() {
        let g = GeneratorConfig::new(GraphKind::RMat, 200, 1600, 5).generate();
        let mut engine = ReferenceEngine::new(&g);
        let prd = PageRankDelta {
            damping: 0.85,
            threshold: 1e-7,
            iterations: 200,
        };
        let got = engine.run_default(&prd).unwrap().values;
        let want = naive_pagerank(&g, 0.85, 200);
        for (v, ((rank, _), b)) in got.iter().zip(want.iter()).enumerate() {
            assert!((rank - b).abs() < 1e-2, "vertex {v}: {rank} vs {b}");
        }
    }

    #[test]
    fn frontier_shrinks_over_iterations() {
        let g = GeneratorConfig::new(GraphKind::RMat, 500, 4000, 7).generate();
        let engine = ReferenceEngine::new(&g);
        let prd = PageRankDelta::paper();
        let (result, snaps) = engine.run_traced(&prd, &RunOptions::default());
        assert_eq!(snaps.len() as u32, result.stats.iterations);
        // Deltas decay geometrically, so the late frontiers must be much
        // smaller than the initial all-active frontier.
        let first = result.stats.per_iteration.first().unwrap().frontier;
        let last = result.stats.per_iteration.last().unwrap().frontier;
        assert_eq!(first, 500);
        assert!(
            last < first / 4,
            "frontier should shrink: {first} -> {last}"
        );
    }

    #[test]
    fn deltas_decay() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 300, 2400, 3).generate();
        let engine = ReferenceEngine::new(&g);
        let prd = PageRankDelta::paper();
        let (_, snaps) = engine.run_traced(&prd, &RunOptions::default());
        let max_abs_delta =
            |snap: &Vec<(f32, f32)>| snap.iter().map(|(_, d)| d.abs()).fold(0.0f32, f32::max);
        let early = max_abs_delta(&snaps[0]);
        let late = max_abs_delta(snaps.last().unwrap());
        assert!(late < early, "deltas must shrink: {early} -> {late}");
    }

    #[test]
    fn tight_threshold_keeps_everything_active_initially() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 100, 1000, 2).generate();
        let engine = ReferenceEngine::new(&g);
        let prd = PageRankDelta {
            threshold: 0.0,
            ..PageRankDelta::paper()
        };
        let (result, _) = engine.run_traced(&prd, &RunOptions::default());
        assert_eq!(
            result.stats.iterations, 20,
            "zero threshold never converges early"
        );
    }
}
