//! # gsd-algos — evaluation algorithms for the GraphSD runtime
//!
//! The four algorithms of the paper's evaluation (§5.1) expressed as
//! [`gsd_runtime::VertexProgram`]s, plus BFS and small auxiliary programs
//! used by tests:
//!
//! * [`PageRank`] — dense PR, 5 iterations in the paper's setup; every
//!   vertex stays active, so GraphSD schedules the full I/O model / FCIU.
//! * [`PageRankDelta`] — PR-D: vertices activate only when their
//!   accumulated rank change exceeds a threshold; frontiers shrink fast.
//! * [`ConnectedComponents`] — min-label propagation.
//! * [`Sssp`] — single-source shortest paths over weighted edges.
//! * [`Bfs`] — breadth-first depth labeling.
//!
//! The [`naive`] module provides independent dense/in-memory oracles
//! (power-iteration PR, Dijkstra, union-find) the programs are validated
//! against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod naive;
pub mod pagerank;
pub mod pagerank_delta;
pub mod ppr;
pub mod sssp;

pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use pagerank::PageRank;
pub use pagerank_delta::PageRankDelta;
pub use ppr::Ppr;
pub use sssp::Sssp;
