//! Connected Components via min-label propagation (the paper's CC
//! workload, implemented — as the paper notes — on Label Propagation).
//! Run on a symmetrized graph to get undirected components; on a directed
//! graph it computes forward-reachability label minima.

use gsd_runtime::{InitialFrontier, ProgramContext, VertexProgram};

/// Min-label propagation: every vertex starts with its own id and adopts
/// the smallest label reachable to it; converges when no label changes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type Value = u32;
    type Accum = u32;

    fn name(&self) -> &'static str {
        "connected-components"
    }

    fn init_value(&self, v: u32, _ctx: &ProgramContext) -> u32 {
        v
    }

    fn zero_accum(&self) -> u32 {
        u32::MAX
    }

    #[inline]
    fn scatter(&self, _u: u32, value: u32, _w: f32, _ctx: &ProgramContext) -> Option<u32> {
        Some(value)
    }

    #[inline]
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    #[inline]
    fn apply(&self, _v: u32, old: u32, accum: u32, _ctx: &ProgramContext) -> Option<u32> {
        (accum < old).then_some(accum)
    }

    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::All
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_components;
    use gsd_graph::{GeneratorConfig, GraphBuilder, GraphKind};
    use gsd_runtime::{Engine, ReferenceEngine};

    #[test]
    fn labels_match_union_find_on_symmetrized_graph() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 400, 500, 13)
            .generate()
            .symmetrized();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&ConnectedComponents).unwrap().values;
        let want = naive_components(&g);
        assert_eq!(got, want);
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 0).ensure_vertices(5);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&ConnectedComponents).unwrap().values;
        assert_eq!(got, vec![0, 0, 2, 3, 4]);
    }

    #[test]
    fn chain_converges_in_diameter_iterations() {
        // 0 <-> 1 <-> 2 <-> ... <-> 9
        let mut b = GraphBuilder::new();
        for v in 0..9u32 {
            b.add_edge(v, v + 1).add_edge(v + 1, v);
        }
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let result = engine.run_default(&ConnectedComponents).unwrap();
        assert!(result.values.iter().all(|&l| l == 0));
        // Label 0 travels one hop per iteration: 9 hops + 1 quiescent check.
        assert_eq!(result.stats.iterations, 10);
    }

    #[test]
    fn directed_cycle_collapses_to_min() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 7).add_edge(7, 5).add_edge(5, 3);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&ConnectedComponents).unwrap().values;
        assert_eq!(got[3], 3);
        assert_eq!(got[5], 3);
        assert_eq!(got[7], 3);
    }
}
