//! PageRank (the paper's PR workload): dense power iteration, 5 rounds in
//! the evaluation setup. Every vertex stays active every iteration, which
//! is exactly the regime where GraphSD's scheduler picks the full I/O
//! model and FCIU's cross-iteration propagation pays off.

use gsd_runtime::{InitialFrontier, ProgramContext, VertexProgram};

/// PageRank with damping `d`: `rank_t(v) = (1 − d) + d · Σ rank_{t−1}(u) / deg(u)`.
///
/// Values are raw ranks with base `1 − d` (not normalized by `|V|`), the
/// convention of GraphChi/GridGraph whose lineage GraphSD follows.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Damping factor, conventionally 0.85.
    pub damping: f32,
    /// Iterations to run (the paper runs 5).
    pub iterations: u32,
}

impl PageRank {
    /// The paper's configuration: damping 0.85, 5 iterations.
    pub fn paper() -> Self {
        PageRank {
            damping: 0.85,
            iterations: 5,
        }
    }

    /// Custom iteration count.
    pub fn with_iterations(iterations: u32) -> Self {
        PageRank {
            damping: 0.85,
            iterations,
        }
    }
}

impl Default for PageRank {
    fn default() -> Self {
        Self::paper()
    }
}

impl VertexProgram for PageRank {
    type Value = f32;
    type Accum = f32;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn init_value(&self, _v: u32, _ctx: &ProgramContext) -> f32 {
        1.0
    }

    fn zero_accum(&self) -> f32 {
        0.0
    }

    #[inline]
    fn scatter(&self, u: u32, value: f32, _w: f32, ctx: &ProgramContext) -> Option<f32> {
        // scatter is only invoked along an out-edge, so degree(u) >= 1.
        Some(value / ctx.degree(u) as f32)
    }

    #[inline]
    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    #[inline]
    fn apply(&self, _v: u32, _old: f32, accum: f32, _ctx: &ProgramContext) -> Option<f32> {
        Some((1.0 - self.damping) + self.damping * accum)
    }

    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::All
    }

    fn apply_all(&self) -> bool {
        true
    }

    fn max_iterations(&self) -> Option<u32> {
        Some(self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_pagerank;
    use gsd_graph::{GeneratorConfig, GraphBuilder, GraphKind};
    use gsd_runtime::{Engine, ReferenceEngine};

    #[test]
    fn matches_naive_power_iteration() {
        let g = GeneratorConfig::new(GraphKind::RMat, 300, 2000, 5).generate();
        let mut engine = ReferenceEngine::new(&g);
        let pr = PageRank::with_iterations(10);
        let got = engine.run_default(&pr).unwrap().values;
        let want = naive_pagerank(&g, 0.85, 10);
        for (v, (a, b)) in got.iter().zip(want.iter()).enumerate() {
            assert!((a - b).abs() < 1e-3, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_in_degree_vertex_settles_at_base() {
        // 0 -> 1: vertex 0 has no in-edges, so after one iteration its rank
        // is exactly 1 - d.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&PageRank::paper()).unwrap().values;
        assert!((got[0] - 0.15).abs() < 1e-6);
    }

    #[test]
    fn runs_exactly_the_configured_iterations() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 50, 200, 1).generate();
        let mut engine = ReferenceEngine::new(&g);
        let result = engine.run_default(&PageRank::with_iterations(3)).unwrap();
        assert_eq!(result.stats.iterations, 3);
    }

    #[test]
    fn ranks_are_positive_and_bounded() {
        let g = GeneratorConfig::new(GraphKind::RMat, 200, 1500, 9).generate();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&PageRank::paper()).unwrap().values;
        assert!(got.iter().all(|&r| r >= 0.15 - 1e-6));
        assert!(got.iter().sum::<f32>() <= g.num_vertices() as f32 * 2.0);
    }
}
