//! Breadth-first search depth labeling — the canonical shrinking-frontier
//! traversal the paper's introduction motivates active-vertex-aware
//! processing with.

use gsd_runtime::{InitialFrontier, ProgramContext, VertexProgram};

/// BFS from [`Bfs::source`]; the value is the hop distance
/// (`u32::MAX` = unreached).
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// Root vertex.
    pub source: u32,
}

impl Bfs {
    /// BFS rooted at `source`.
    pub fn new(source: u32) -> Self {
        Bfs { source }
    }
}

impl VertexProgram for Bfs {
    type Value = u32;
    type Accum = u32;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init_value(&self, v: u32, _ctx: &ProgramContext) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn zero_accum(&self) -> u32 {
        u32::MAX
    }

    #[inline]
    fn scatter(&self, _u: u32, value: u32, _w: f32, _ctx: &ProgramContext) -> Option<u32> {
        Some(value.saturating_add(1))
    }

    #[inline]
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    #[inline]
    fn apply(&self, _v: u32, old: u32, accum: u32, _ctx: &ProgramContext) -> Option<u32> {
        (accum < old).then_some(accum)
    }

    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::Seeds(vec![self.source])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_bfs;
    use gsd_graph::{generators, GeneratorConfig, GraphKind};
    use gsd_runtime::{Engine, ReferenceEngine};

    #[test]
    fn matches_naive_bfs() {
        let g = GeneratorConfig::new(GraphKind::WebLocality, 500, 4000, 17).generate();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Bfs::new(0)).unwrap().values;
        assert_eq!(got, naive_bfs(&g, 0));
    }

    #[test]
    fn depths_on_grid() {
        let g = generators::grid2d(4);
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Bfs::new(0)).unwrap().values;
        assert_eq!(got[0], 0);
        assert_eq!(got[1], 1);
        assert_eq!(got[4], 1);
        assert_eq!(got[5], 2);
        assert_eq!(got[15], 6);
    }

    #[test]
    fn iteration_count_equals_eccentricity_plus_quiescence() {
        let g = generators::grid2d(4);
        let mut engine = ReferenceEngine::new(&g);
        let result = engine.run_default(&Bfs::new(0)).unwrap();
        // Farthest vertex is 6 hops away; one extra iteration finds nothing.
        assert_eq!(result.stats.iterations, 7);
    }
}
