//! Single-Source Shortest Paths (the paper's SSSP workload): BSP
//! Bellman-Ford-style relaxation over weighted edges; frontiers are the
//! vertices whose tentative distance improved.

use gsd_runtime::{InitialFrontier, ProgramContext, VertexProgram};

/// SSSP from [`Sssp::source`]. Distances are `f32`; unreachable vertices
/// stay at `f32::INFINITY`. Edge weights must be non-negative for the
/// result to equal Dijkstra's (negative weights still converge on DAG-free
/// improvement but are not validated).
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// Root vertex.
    pub source: u32,
}

impl Sssp {
    /// SSSP rooted at `source`.
    pub fn new(source: u32) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type Value = f32;
    type Accum = f32;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init_value(&self, v: u32, _ctx: &ProgramContext) -> f32 {
        if v == self.source {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn zero_accum(&self) -> f32 {
        f32::INFINITY
    }

    #[inline]
    fn scatter(&self, _u: u32, value: f32, weight: f32, _ctx: &ProgramContext) -> Option<f32> {
        Some(value + weight)
    }

    #[inline]
    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    #[inline]
    fn apply(&self, _v: u32, old: f32, accum: f32, _ctx: &ProgramContext) -> Option<f32> {
        (accum < old).then_some(accum)
    }

    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::Seeds(vec![self.source])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dijkstra;
    use gsd_graph::{generators, GeneratorConfig, GraphBuilder, GraphKind};
    use gsd_runtime::{Engine, ReferenceEngine};
    use rand::SeedableRng;

    #[test]
    fn matches_dijkstra_on_random_weighted_graph() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 200, 2000, 21)
            .weighted()
            .generate();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Sssp::new(0)).unwrap().values;
        let want = naive_dijkstra(&g, 0);
        for v in 0..g.num_vertices() as usize {
            if want[v].is_infinite() {
                assert!(got[v].is_infinite(), "vertex {v} should be unreachable");
            } else {
                assert!(
                    (got[v] - want[v]).abs() < 1e-4,
                    "vertex {v}: {} vs {}",
                    got[v],
                    want[v]
                );
            }
        }
    }

    #[test]
    fn grid_distances_are_manhattan_with_unit_weights() {
        let g = generators::grid2d(5);
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Sssp::new(0)).unwrap().values;
        // vertex (r, c) = r * 5 + c has distance r + c from corner 0.
        for r in 0..5u32 {
            for c in 0..5u32 {
                assert_eq!(got[(r * 5 + c) as usize], (r + c) as f32);
            }
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 1.0).ensure_vertices(3);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Sssp::new(0)).unwrap().values;
        assert_eq!(got[0], 0.0);
        assert_eq!(got[1], 1.0);
        assert!(got[2].is_infinite());
    }

    #[test]
    fn shorter_path_wins_over_fewer_hops() {
        // 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 2, 10.0)
            .add_weighted_edge(0, 1, 1.0)
            .add_weighted_edge(1, 2, 2.0);
        let g = b.build();
        let mut engine = ReferenceEngine::new(&g);
        let got = engine.run_default(&Sssp::new(0)).unwrap().values;
        assert_eq!(got[2], 3.0);
    }

    #[test]
    fn weighted_random_graph_respects_triangle_inequality() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = generators::randomize_weights(
            GeneratorConfig::new(GraphKind::RMat, 100, 800, 5).generate(),
            &mut rng,
        );
        let mut engine = ReferenceEngine::new(&g);
        let dist = engine.run_default(&Sssp::new(0)).unwrap().values;
        for e in g.edges() {
            if dist[e.src as usize].is_finite() {
                assert!(
                    dist[e.dst as usize] <= dist[e.src as usize] + e.weight + 1e-4,
                    "edge ({}, {}) violates relaxation",
                    e.src,
                    e.dst
                );
            }
        }
    }
}
