//! Property tests of the `VertexProgram` contract every engine relies on
//! (see `gsd_runtime::program`): `combine` is commutative and associative
//! with `zero_accum` as its identity; `scatter` is a pure function of the
//! source's committed value and the edge; and for partial-frontier
//! programs, applying the zero accumulator never changes a vertex.
//! Violating any of these would let a parallel schedule or a
//! cross-iteration reordering change results — the equivalence suites
//! would catch it downstream, but these tests point at the offending
//! program directly.

use gsd_algos::{Bfs, ConnectedComponents, PageRank, PageRankDelta, Sssp};
use gsd_runtime::{ProgramContext, VertexProgram};
use proptest::prelude::*;
use std::sync::Arc;

fn ctx(n: u32) -> ProgramContext {
    ProgramContext::new(n, Arc::new((0..n).map(|v| 1 + v % 7).collect()))
}

/// Checks the algebraic laws for one program over sampled accumulator
/// values produced by its own scatter (so the values are in-domain).
fn check_combine_laws<P: VertexProgram>(
    program: &P,
    samples: &[P::Accum],
    exact: bool,
) -> Result<(), TestCaseError> {
    let eq = |x: P::Accum, y: P::Accum| -> bool {
        if exact {
            x == y
        } else {
            // Float sums: compare bit-for-bit after both orders — the
            // *values* must be close; for f32 addition of two operands the
            // result is IEEE-commutative, so exact equality is fine for
            // pairs; associativity gets a tolerance via bits distance.
            x == y || {
                let (a, b) = (x.to_bits() as i64, y.to_bits() as i64);
                (a - b).abs() < 16
            }
        }
    };
    let zero = program.zero_accum();
    for &a in samples {
        prop_assert!(eq(program.combine(a, zero), a), "right identity");
        prop_assert!(eq(program.combine(zero, a), a), "left identity");
        for &b in samples {
            prop_assert!(
                eq(program.combine(a, b), program.combine(b, a)),
                "commutativity"
            );
            for &c in samples {
                prop_assert!(
                    eq(
                        program.combine(program.combine(a, b), c),
                        program.combine(a, program.combine(b, c))
                    ),
                    "associativity"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cc_combine_laws(labels in proptest::collection::vec(0u32..1000, 1..6)) {
        let p = ConnectedComponents;
        check_combine_laws(&p, &labels, true)?;
    }

    #[test]
    fn bfs_combine_laws(depths in proptest::collection::vec(0u32..1000, 1..6)) {
        let p = Bfs::new(0);
        check_combine_laws(&p, &depths, true)?;
    }

    #[test]
    fn sssp_combine_laws(dists in proptest::collection::vec(0u32..100_000, 1..6)) {
        let p = Sssp::new(0);
        let dists: Vec<f32> = dists.into_iter().map(|d| d as f32 / 16.0).collect();
        check_combine_laws(&p, &dists, true)?; // min is exact on floats
    }

    #[test]
    fn pagerank_combine_laws(sums in proptest::collection::vec(0u32..10_000, 1..5)) {
        let p = PageRank::paper();
        let sums: Vec<f32> = sums.into_iter().map(|x| x as f32 / 64.0).collect();
        check_combine_laws(&p, &sums, false)?;
    }

    #[test]
    fn zero_accum_apply_is_identity_for_partial_frontier_programs(
        v in 0u32..64, old in 0u32..1000
    ) {
        let ctx = ctx(64);
        // CC / BFS: untouched vertices never change.
        let cc = ConnectedComponents;
        prop_assert_eq!(cc.apply(v, old, cc.zero_accum(), &ctx), None);
        let bfs = Bfs::new(0);
        prop_assert_eq!(bfs.apply(v, old, bfs.zero_accum(), &ctx), None);
        // SSSP with any committed distance.
        let sssp = Sssp::new(0);
        prop_assert_eq!(sssp.apply(v, old as f32, sssp.zero_accum(), &ctx), None);
        // PR-D: zero accumulated delta deactivates.
        let prd = PageRankDelta::paper();
        prop_assert_eq!(prd.apply(v, (old as f32, 0.1), prd.zero_accum(), &ctx), None);
    }

    #[test]
    fn scatter_is_deterministic(u in 0u32..64, value in 0u32..1000, w in 1u32..32) {
        let ctx = ctx(64);
        let w = w as f32 / 32.0;
        let cc = ConnectedComponents;
        prop_assert_eq!(cc.scatter(u, value, w, &ctx), cc.scatter(u, value, w, &ctx));
        let pr = PageRank::paper();
        prop_assert_eq!(
            pr.scatter(u, value as f32, w, &ctx),
            pr.scatter(u, value as f32, w, &ctx)
        );
        let sssp = Sssp::new(0);
        prop_assert_eq!(
            sssp.scatter(u, value as f32, w, &ctx),
            sssp.scatter(u, value as f32, w, &ctx)
        );
    }

    #[test]
    fn pagerank_scatter_conserves_mass(u in 0u32..64, rank in 1u32..1000) {
        // Summing a vertex's scatter over its out-degree returns its rank.
        let ctx = ctx(64);
        let pr = PageRank::paper();
        let rank = rank as f32 / 10.0;
        let deg = ctx.degree(u);
        let msg = pr.scatter(u, rank, 1.0, &ctx).unwrap();
        prop_assert!((msg * deg as f32 - rank).abs() < 1e-3 * rank);
    }
}

// `Value::to_bits` is needed by the tolerance check above.
use gsd_runtime::Value as _;
