//! Checkpoint persistence: commit protocol, discovery, validation and
//! retention.

use crate::hash::{crc32, fnv64};
use crate::manifest::{Manifest, ManifestTag, MANIFEST_VERSION};
use crate::snapshot::CheckpointData;
use gsd_io::{IoStatsSnapshot, SharedStorage, Storage};
use gsd_trace::{TraceEvent, TraceSink};
use std::io::{Error, ErrorKind};
use std::sync::Arc;

/// FNV-1a/64 fingerprint of the preprocessed graph a grid prefix points
/// at (its `meta.json` bytes). Interval boundaries, block layout, codec
/// and sort order all live in the metadata, so any preprocessing change
/// that could make a checkpoint unsound changes the fingerprint. The
/// delta epoch lives there too (format v4 reseals the meta on every
/// ingest), so mutating the graph conservatively invalidates warm
/// checkpoints — resuming values computed against the previous epoch's
/// edge set would be unsound.
pub fn graph_fingerprint(storage: &dyn Storage, grid_prefix: &str) -> std::io::Result<u64> {
    storage
        .read_all(&format!("{grid_prefix}meta.json"))
        .map(|bytes| fnv64(&bytes))
}

/// Writes, discovers and garbage-collects checkpoints for one run
/// identity ([`ManifestTag`]) under one key prefix.
///
/// Commit protocol (crash-safe at every step):
/// 1. snapshot object created (`Storage::create` = write-temp + rename),
/// 2. [`Storage::sync`] — snapshot durable before it is referenced,
/// 3. manifest object created (the commit point),
/// 4. [`Storage::sync`] — manifest durable,
/// 5. retention: checkpoints beyond the newest `retain` are deleted,
///    manifest first (un-commit), then snapshot.
pub struct CheckpointStore {
    storage: SharedStorage,
    dir: String,
    retain: usize,
    tag: ManifestTag,
    trace: Arc<dyn TraceSink>,
    io: IoStatsSnapshot,
}

impl CheckpointStore {
    /// A store for checkpoints of the run identified by `tag`, kept under
    /// `dir/` in `storage`, retaining the newest `retain` checkpoints.
    pub fn new(
        storage: SharedStorage,
        dir: impl Into<String>,
        retain: usize,
        tag: ManifestTag,
    ) -> Self {
        CheckpointStore {
            storage,
            dir: dir.into(),
            retain: retain.max(1),
            tag,
            trace: gsd_trace::null_sink(),
            io: IoStatsSnapshot::default(),
        }
    }

    /// Routes `CkptWritten`/`CkptRestored` events to `trace`.
    pub fn set_trace(&mut self, trace: Arc<dyn TraceSink>) {
        self.trace = trace;
    }

    /// The run identity checkpoints are tagged with.
    pub fn tag(&self) -> &ManifestTag {
        &self.tag
    }

    /// Cumulative storage traffic of every [`CheckpointStore::write`] call
    /// so far. Engines subtract this from their run totals so a
    /// checkpointed run reports the same I/O accounting as an
    /// unprotected one (the determinism contract; see DESIGN.md §13).
    pub fn io(&self) -> IoStatsSnapshot {
        self.io
    }

    fn snapshot_key(&self, iteration: u32) -> String {
        format!("{}/snap_{iteration:010}.bin", self.dir)
    }

    fn manifest_key(&self, iteration: u32) -> String {
        format!("{}/manifest_{iteration:010}.json", self.dir)
    }

    /// Iterations that have a (possibly invalid) manifest, newest first.
    fn manifest_iterations(&self) -> Vec<u32> {
        let prefix = format!("{}/manifest_", self.dir);
        let mut iters: Vec<u32> = self
            .storage
            .list_keys()
            .into_iter()
            .filter_map(|key| {
                key.strip_prefix(&prefix)?
                    .strip_suffix(".json")?
                    .parse()
                    .ok()
            })
            .collect();
        iters.sort_unstable_by(|a, b| b.cmp(a));
        iters
    }

    /// Commits a checkpoint of `data` (see the commit protocol above) and
    /// applies the retention policy.
    pub fn write(&mut self, data: &CheckpointData) -> std::io::Result<()> {
        let before = self.storage.stats().snapshot();
        let blob = data.encode();
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            tag: self.tag.clone(),
            iteration: data.iteration,
            snapshot_key: self.snapshot_key(data.iteration),
            snapshot_bytes: blob.len() as u64,
            snapshot_crc: crc32(&blob),
        };
        self.storage.create(&manifest.snapshot_key, &blob)?;
        self.storage.sync()?;
        let manifest_json = serde_json::to_vec(&manifest).map_err(Error::other)?;
        self.storage
            .create(&self.manifest_key(data.iteration), &manifest_json)?;
        self.storage.sync()?;
        // Retention: newest `retain` survive; manifests die before their
        // snapshots so a crash mid-GC never leaves a dangling commit.
        for stale in self.manifest_iterations().into_iter().skip(self.retain) {
            self.storage.delete(&self.manifest_key(stale))?;
            self.storage.delete(&self.snapshot_key(stale))?;
        }
        self.io = self
            .io
            .plus(&self.storage.stats().snapshot().since(&before));
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::CkptWritten {
                iteration: data.iteration,
                bytes: blob.len() as u64,
            });
        }
        Ok(())
    }

    /// Loads the newest valid checkpoint matching this store's tag, or
    /// `None` when no usable checkpoint exists. Checkpoints that fail
    /// validation (version or tag mismatch, missing/truncated/corrupt
    /// snapshot) are skipped, falling back to the next-older one —
    /// recovery prefers losing an iteration over failing a run.
    pub fn latest(&self) -> std::io::Result<Option<CheckpointData>> {
        for iteration in self.manifest_iterations() {
            let Ok(bytes) = self.storage.read_all(&self.manifest_key(iteration)) else {
                continue;
            };
            let Ok(manifest) = serde_json::from_slice::<Manifest>(&bytes) else {
                continue;
            };
            if manifest.version != MANIFEST_VERSION || manifest.tag != self.tag {
                continue;
            }
            let Ok(blob) = self.storage.read_all(&manifest.snapshot_key) else {
                continue;
            };
            if blob.len() as u64 != manifest.snapshot_bytes || crc32(&blob) != manifest.snapshot_crc
            {
                continue;
            }
            let Ok(data) = CheckpointData::decode(&blob) else {
                continue;
            };
            if data.iteration != manifest.iteration {
                continue;
            }
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::CkptRestored {
                    iteration: data.iteration,
                    bytes: blob.len() as u64,
                });
            }
            return Ok(Some(data));
        }
        Ok(None)
    }

    /// Validation error for resuming engines: state dimensions must match
    /// the graph being processed.
    pub fn check_dimensions(&self, data: &CheckpointData, n: u32) -> std::io::Result<()> {
        if data.values.len() != n as usize || data.accum.len() != n as usize {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "checkpoint holds {} values for a graph of {} vertices",
                    data.values.len(),
                    n
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_io::MemStorage;
    use gsd_runtime::RunStats;

    fn tag() -> ManifestTag {
        ManifestTag {
            engine: "graphsd".into(),
            algorithm: "pagerank".into(),
            value_bytes: 8,
            num_vertices: 3,
            graph_fingerprint: 0xfeed,
            config_hash: 7,
        }
    }

    fn data(iteration: u32) -> CheckpointData {
        CheckpointData {
            iteration,
            values: vec![iteration as u64, 2, 3],
            accum: vec![0, 0, 0],
            frontier: vec![0, 1],
            touched: vec![],
            stats: RunStats::new("graphsd", "pagerank"),
            extra: vec![1, 2, 3],
        }
    }

    fn store_on(storage: SharedStorage) -> CheckpointStore {
        CheckpointStore::new(storage, "ckpt", 2, tag())
    }

    #[test]
    fn write_then_latest_roundtrips() -> std::io::Result<()> {
        let storage: SharedStorage = Arc::new(MemStorage::new());
        let mut store = store_on(storage.clone());
        assert!(store.latest()?.is_none());
        store.write(&data(1))?;
        store.write(&data(2))?;
        let got = store.latest()?.expect("checkpoint exists");
        assert_eq!(got, data(2));
        assert!(store.io().write_bytes > 0, "commit traffic accounted");
        Ok(())
    }

    #[test]
    fn retention_keeps_the_newest_k() -> std::io::Result<()> {
        let storage: SharedStorage = Arc::new(MemStorage::new());
        let mut store = store_on(storage.clone());
        for i in 1..=5 {
            store.write(&data(i))?;
        }
        let keys = storage.list_keys();
        assert!(!keys.iter().any(|k| k.contains("0000000003")), "{keys:?}");
        assert!(keys.iter().any(|k| k.contains("manifest_0000000004")));
        assert!(keys.iter().any(|k| k.contains("manifest_0000000005")));
        assert!(keys.iter().any(|k| k.contains("snap_0000000005")));
        assert_eq!(keys.len(), 4, "{keys:?}");
        Ok(())
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() -> std::io::Result<()> {
        let storage: SharedStorage = Arc::new(MemStorage::new());
        let mut store = store_on(storage.clone());
        store.write(&data(1))?;
        store.write(&data(2))?;
        // Corrupt the newest snapshot in place.
        let key = "ckpt/snap_0000000002.bin";
        let mut blob = storage.read_all(key)?;
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        storage.create(key, &blob)?;
        let got = store.latest()?.expect("older checkpoint survives");
        assert_eq!(got.iteration, 1);
        Ok(())
    }

    #[test]
    fn tag_mismatch_is_not_resumed() -> std::io::Result<()> {
        let storage: SharedStorage = Arc::new(MemStorage::new());
        let mut store = store_on(storage.clone());
        store.write(&data(1))?;
        let mut other_tag = tag();
        other_tag.graph_fingerprint ^= 1;
        let other = CheckpointStore::new(storage.clone(), "ckpt", 2, other_tag);
        assert!(other.latest()?.is_none(), "fingerprint must match");
        let mut other_algo = tag();
        other_algo.algorithm = "bfs".into();
        let other = CheckpointStore::new(storage, "ckpt", 2, other_algo);
        assert!(other.latest()?.is_none(), "algorithm must match");
        Ok(())
    }

    #[test]
    fn dimension_check_rejects_wrong_graph_size() {
        let storage: SharedStorage = Arc::new(MemStorage::new());
        let store = store_on(storage);
        assert!(store.check_dimensions(&data(1), 3).is_ok());
        let err = store.check_dimensions(&data(1), 4).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn graph_fingerprint_tracks_meta_content() -> std::io::Result<()> {
        let storage = MemStorage::new();
        storage.create("g/meta.json", b"{\"p\":4}")?;
        let a = graph_fingerprint(&storage, "g/")?;
        storage.create("g/meta.json", b"{\"p\":5}")?;
        let b = graph_fingerprint(&storage, "g/")?;
        assert_ne!(a, b);
        assert!(graph_fingerprint(&storage, "absent/").is_err());
        Ok(())
    }
}
