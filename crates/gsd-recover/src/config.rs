//! Recovery configuration and its environment defaults.

/// Checkpoint/recovery options an engine runs with.
///
/// The environment mirrors the prefetch pipeline's pattern: engine config
/// defaults consult [`RecoveryConfig::from_env`], so a whole test suite
/// (or CI job) can flip checkpointing on without code changes:
///
/// * `GSD_CKPT_EVERY=N` — enable, checkpointing every `N ≥ 1` committed
///   iterations.
/// * `GSD_CKPT_DIR=name` — checkpoint key prefix inside the run's storage
///   (default `ckpt`; resolved relative to the grid prefix, so engines
///   sharing a store do not collide).
/// * `GSD_CKPT_RESUME=0` — write checkpoints but never resume from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Write a checkpoint every this many committed iterations (≥ 1).
    /// Checkpoints land only on driver-loop boundaries: a two-pass FCIU
    /// round commits two iterations between boundaries, so the actual
    /// cadence may skip an odd iteration number.
    pub every: u32,
    /// Key prefix for checkpoint objects, relative to the engine's grid
    /// prefix (no trailing slash).
    pub dir: String,
    /// Keep the newest `retain` checkpoints; older ones are deleted after
    /// each successful commit.
    pub retain: usize,
    /// Attempt to resume from the latest valid checkpoint at run start.
    pub resume: bool,
    /// Testing/fault-injection aid: simulate a crash by aborting the run
    /// (with `ErrorKind::Interrupted`) immediately after the first
    /// checkpoint whose iteration is ≥ this value. The abort happens at
    /// the exact commit point, so storage and checkpoint state are those
    /// of a kill at an iteration boundary.
    pub halt_after: Option<u32>,
}

impl RecoveryConfig {
    /// Checkpoint every `n` committed iterations with default dir,
    /// retention and resume policy.
    pub fn every(n: u32) -> Self {
        RecoveryConfig {
            every: n.max(1),
            dir: "ckpt".to_string(),
            retain: 2,
            resume: true,
            halt_after: None,
        }
    }

    /// Reads the `GSD_CKPT_*` environment variables; `None` unless
    /// `GSD_CKPT_EVERY` is set to a positive integer.
    pub fn from_env() -> Option<Self> {
        let every: u32 = std::env::var("GSD_CKPT_EVERY").ok()?.parse().ok()?;
        if every == 0 {
            return None;
        }
        let mut cfg = RecoveryConfig::every(every);
        if let Ok(dir) = std::env::var("GSD_CKPT_DIR") {
            if !dir.is_empty() {
                cfg.dir = dir;
            }
        }
        if std::env::var("GSD_CKPT_RESUME").as_deref() == Ok("0") {
            cfg.resume = false;
        }
        Some(cfg)
    }

    /// Sets the checkpoint key prefix.
    pub fn with_dir(mut self, dir: impl Into<String>) -> Self {
        self.dir = dir.into();
        self
    }

    /// Sets the retention depth (keep the newest `k` checkpoints).
    pub fn with_retain(mut self, k: usize) -> Self {
        self.retain = k.max(1);
        self
    }

    /// Writes checkpoints but never resumes from them.
    pub fn without_resume(mut self) -> Self {
        self.resume = false;
        self
    }

    /// Simulates a crash right after the first checkpoint at iteration
    /// ≥ `k` (see [`RecoveryConfig::halt_after`]).
    pub fn with_halt_after(mut self, k: u32) -> Self {
        self.halt_after = Some(k);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = RecoveryConfig::every(3)
            .with_dir("alt")
            .with_retain(5)
            .without_resume()
            .with_halt_after(7);
        assert_eq!(c.every, 3);
        assert_eq!(c.dir, "alt");
        assert_eq!(c.retain, 5);
        assert!(!c.resume);
        assert_eq!(c.halt_after, Some(7));
    }

    #[test]
    fn every_zero_is_clamped() {
        assert_eq!(RecoveryConfig::every(0).every, 1);
        assert_eq!(RecoveryConfig::every(0).with_retain(0).retain, 1);
    }
}
