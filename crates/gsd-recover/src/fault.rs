//! Deterministic I/O fault injection.
//!
//! [`FaultyStorage`] wraps any [`Storage`] and makes a seed-driven
//! decision *before* each data operation reaches the inner backend:
//!
//! * **Transient** faults fail one attempt (`ErrorKind::Interrupted`); a
//!   retry of the same logical request draws a fresh decision, so a
//!   bounded retry loop eventually succeeds. Whether attempt *n* fails is
//!   a pure function of the seed and the global attempt counter.
//! * **Permanent** faults are a pure function of the seed and the *key*:
//!   every attempt against a doomed key fails with `ErrorKind::Other`,
//!   modeling an unreadable sector. Retrying is pointless by design.
//! * `kill_at_op` hard-fails the N-th data operation regardless of
//!   rates, for scripting a crash at an exact point in a run.
//! * **Corruption** faults let an accounted read *succeed with bad
//!   bytes*: the buffer is deterministically bit-flipped, tail-zeroed
//!   (truncated transfer) or zero-filled after the inner read. The inner
//!   store's at-rest content is untouched, so a verifier's unaccounted
//!   side read still sees clean data — modeling in-flight corruption a
//!   bounded re-read can recover from. At-rest rot is injected separately
//!   with [`corrupt_object`].
//!
//! Failed attempts never reach the inner backend, so they leave its
//! accounting and sequential/random cursors untouched: a faulty run that
//! eventually succeeds has bit-identical I/O statistics to a clean one.

use crate::hash::fnv64;
use gsd_io::{DiskModel, IoStats, SharedStorage, Storage};
use gsd_trace::CounterRegistry;
use parking_lot::Mutex;
use std::io::{Error, ErrorKind};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Restricts fault injection to a subset of requests.
#[derive(Debug, Clone, Default)]
pub struct FaultTarget {
    /// Only requests whose key contains this substring are eligible.
    pub key_substring: String,
    /// For positioned ops, only requests starting inside this byte range
    /// are eligible (`create`/`sync` count as offset 0).
    pub offsets: Option<Range<u64>>,
}

impl FaultTarget {
    /// Targets requests whose key contains `substring`.
    pub fn key(substring: impl Into<String>) -> Self {
        FaultTarget {
            key_substring: substring.into(),
            offsets: None,
        }
    }

    fn matches(&self, key: &str, offset: u64) -> bool {
        key.contains(&self.key_substring)
            && self.offsets.as_ref().is_none_or(|r| r.contains(&offset))
    }
}

/// How injected corruption mangles a read buffer (or, via
/// [`corrupt_object`], an at-rest object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Flip one deterministically chosen bit.
    BitFlip,
    /// Drop the tail: in-flight, the unfilled remainder of the buffer
    /// reads as zeros; at rest, the object is rewritten strictly shorter.
    Truncate,
    /// Zero a deterministically chosen span.
    ZeroFill,
}

impl CorruptionMode {
    /// Parses `bitflip`, `truncate` or `zerofill`.
    pub fn parse(spec: &str) -> Option<Self> {
        match spec.trim() {
            "bitflip" => Some(CorruptionMode::BitFlip),
            "truncate" => Some(CorruptionMode::Truncate),
            "zerofill" => Some(CorruptionMode::ZeroFill),
            _ => None,
        }
    }
}

impl std::fmt::Display for CorruptionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptionMode::BitFlip => write!(f, "bitflip"),
            CorruptionMode::Truncate => write!(f, "truncate"),
            CorruptionMode::ZeroFill => write!(f, "zerofill"),
        }
    }
}

/// Parameters of the injected fault distribution.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given attempt fails transiently.
    pub transient_rate: f64,
    /// Probability in `[0, 1]` that any given *key* is permanently bad.
    pub permanent_rate: f64,
    /// Probability in `[0, 1]` that an accounted read succeeds with
    /// corrupted bytes (requires `corruption_mode`).
    pub corruption_rate: f64,
    /// How corrupted reads are mangled.
    pub corruption_mode: Option<CorruptionMode>,
    /// Restrict injection to matching requests (`None` = all requests).
    pub target: Option<FaultTarget>,
    /// Hard-fail the N-th data operation (1-based, counted across all
    /// faultable ops) with a fatal error, simulating a crash point.
    pub kill_at_op: Option<u64>,
}

impl FaultConfig {
    /// Transient-only faults: each attempt fails with probability `rate`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            transient_rate: rate.clamp(0.0, 1.0),
            permanent_rate: 0.0,
            corruption_rate: 0.0,
            corruption_mode: None,
            target: None,
            kill_at_op: None,
        }
    }

    /// Parses the `GSD_FAULT_INJECT` environment value, `SEED:RATE`
    /// (e.g. `42:0.02` — seed 42, 2% transient faults per attempt).
    pub fn parse(spec: &str) -> Option<Self> {
        let (seed, rate) = spec.split_once(':')?;
        let seed: u64 = seed.trim().parse().ok()?;
        let rate: f64 = rate.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        Some(FaultConfig::transient(seed, rate))
    }

    /// Marks every key matching `target` as permanently bad instead of
    /// transiently flaky.
    pub fn with_permanent(mut self, rate: f64) -> Self {
        self.permanent_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Corrupts read buffers with probability `rate` per attempt, using
    /// `mode`. The at-rest object is never touched.
    pub fn with_corruption(mut self, mode: CorruptionMode, rate: f64) -> Self {
        self.corruption_rate = rate.clamp(0.0, 1.0);
        self.corruption_mode = Some(mode);
        self
    }

    /// Restricts injection to requests matching `target`.
    pub fn with_target(mut self, target: FaultTarget) -> Self {
        self.target = Some(target);
        self
    }

    /// Hard-fails the `n`-th data operation (1-based).
    pub fn with_kill_at_op(mut self, n: u64) -> Self {
        self.kill_at_op = Some(n);
        self
    }
}

/// `splitmix64` output step — a well-mixed pure function of its input,
/// used to turn (seed, counter) and (seed, key-hash) into decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

const PERMANENT_SALT: u64 = 0x70_65_72_6d; // "perm"
const CORRUPT_SALT: u64 = 0x63_6f_72_72; // "corr"

/// A [`Storage`] decorator that injects deterministic faults (see the
/// module docs for the fault model).
pub struct FaultyStorage {
    inner: SharedStorage,
    cfg: FaultConfig,
    /// Global attempt counter; the lock also serializes decision order so
    /// a single-threaded caller sees a reproducible decision stream.
    ops: Mutex<u64>,
    injected_transient: AtomicU64,
    injected_permanent: AtomicU64,
    injected_corrupt: AtomicU64,
}

impl FaultyStorage {
    /// Wraps `inner`, injecting faults per `cfg`.
    pub fn new(inner: SharedStorage, cfg: FaultConfig) -> Self {
        FaultyStorage {
            inner,
            cfg,
            ops: Mutex::new(0),
            injected_transient: AtomicU64::new(0),
            injected_permanent: AtomicU64::new(0),
            injected_corrupt: AtomicU64::new(0),
        }
    }

    /// Attempts failed transiently so far.
    pub fn injected_transient(&self) -> u64 {
        self.injected_transient.load(Ordering::Relaxed)
    }

    /// Attempts failed permanently (bad key) so far.
    pub fn injected_permanent(&self) -> u64 {
        self.injected_permanent.load(Ordering::Relaxed)
    }

    /// Reads that succeeded with corrupted bytes so far.
    pub fn injected_corrupt(&self) -> u64 {
        self.injected_corrupt.load(Ordering::Relaxed)
    }

    /// Data operations observed so far (the attempt stream `kill_at_op`
    /// indexes into) — lets a test size a kill point relative to a probe
    /// run's total.
    pub fn ops_seen(&self) -> u64 {
        *self.ops.lock()
    }

    /// Draws the fault decision for one attempt. Holds only the counter
    /// lock and returns before any inner storage call. On success yields
    /// the attempt's index, which also seeds the corruption draw.
    fn decide(&self, op: &'static str, key: &str, offset: u64) -> std::io::Result<u64> {
        let op_index = {
            let mut ops = self.ops.lock();
            *ops += 1;
            *ops
        };
        if self.cfg.kill_at_op == Some(op_index) {
            return Err(Error::other(format!(
                "injected crash at op {op_index} ({op} {key})"
            )));
        }
        if let Some(target) = &self.cfg.target {
            if !target.matches(key, offset) {
                return Ok(op_index);
            }
        }
        if self.cfg.permanent_rate > 0.0 {
            let draw = unit(mix(self.cfg.seed ^ fnv64(key.as_bytes()) ^ PERMANENT_SALT));
            if draw < self.cfg.permanent_rate {
                self.injected_permanent.fetch_add(1, Ordering::Relaxed);
                return Err(Error::other(format!(
                    "injected permanent fault on {key} ({op})"
                )));
            }
        }
        if self.cfg.transient_rate > 0.0 {
            let draw = unit(mix(self.cfg.seed ^ op_index));
            if draw < self.cfg.transient_rate {
                self.injected_transient.fetch_add(1, Ordering::Relaxed);
                return Err(Error::new(
                    ErrorKind::Interrupted,
                    format!("injected transient fault on {key} ({op}, attempt stream {op_index})"),
                ));
            }
        }
        Ok(op_index)
    }

    /// Mangles a successfully read buffer with probability
    /// `corruption_rate`, deterministically in (seed, attempt index). The
    /// counter advances only when bytes actually changed (zero-filling an
    /// already-zero span corrupts nothing).
    fn maybe_corrupt(&self, key: &str, offset: u64, op_index: u64, buf: &mut [u8]) {
        let Some(mode) = self.cfg.corruption_mode else {
            return;
        };
        if self.cfg.corruption_rate <= 0.0 || buf.is_empty() {
            return;
        }
        if let Some(target) = &self.cfg.target {
            if !target.matches(key, offset) {
                return;
            }
        }
        let h = mix(self.cfg.seed ^ op_index ^ CORRUPT_SALT);
        if unit(h) >= self.cfg.corruption_rate {
            return;
        }
        let pick = mix(h);
        let len = buf.len();
        let changed = match mode {
            CorruptionMode::BitFlip => {
                let bit = (pick % (len as u64 * 8)) as usize;
                buf[bit / 8] ^= 1 << (bit % 8);
                true
            }
            CorruptionMode::Truncate => {
                // The transfer stopped early: the tail was never filled.
                let keep = (pick % len as u64) as usize;
                let changed = buf[keep..].iter().any(|&b| b != 0);
                buf[keep..].fill(0);
                changed
            }
            CorruptionMode::ZeroFill => {
                let start = (pick % len as u64) as usize;
                let span = ((pick >> 32) % 64 + 1) as usize;
                let end = (start + span).min(len);
                let changed = buf[start..end].iter().any(|&b| b != 0);
                buf[start..end].fill(0);
                changed
            }
        };
        if changed {
            self.injected_corrupt.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Corrupts the **at-rest** object `key` in place, deterministically in
/// `(seed, key)`, and returns the affected byte offset. Used by tests,
/// the corruption-smoke CI job and `gsd`'s fault tooling to plant rot
/// that `scrub`/verify-on-read must catch.
///
/// - `BitFlip` flips one bit of the stored payload.
/// - `Truncate` rewrites the object strictly shorter.
/// - `ZeroFill` zeroes a span anchored at a nonzero byte (so the object
///   provably changed); an all-zero object is rejected as uncorruptible.
///
/// Empty objects are rejected (`InvalidInput`): there is nothing to rot.
pub fn corrupt_object(
    storage: &dyn Storage,
    key: &str,
    mode: CorruptionMode,
    seed: u64,
) -> std::io::Result<u64> {
    let mut bytes = storage.read_all(key)?;
    if bytes.is_empty() {
        return Err(Error::new(
            ErrorKind::InvalidInput,
            format!("cannot corrupt empty object {key}"),
        ));
    }
    let len = bytes.len();
    let h = mix(seed ^ fnv64(key.as_bytes()) ^ CORRUPT_SALT);
    let affected = match mode {
        CorruptionMode::BitFlip => {
            let bit = (h % (len as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            (bit / 8) as u64
        }
        CorruptionMode::Truncate => {
            let keep = (h % len as u64) as usize;
            bytes.truncate(keep);
            keep as u64
        }
        CorruptionMode::ZeroFill => {
            let start = (h % len as u64) as usize;
            let Some(anchor) = (start..len).chain(0..start).find(|&i| bytes[i] != 0) else {
                return Err(Error::new(
                    ErrorKind::InvalidInput,
                    format!("object {key} is all zeros; zero-fill would change nothing"),
                ));
            };
            let span = ((h >> 32) % 64 + 1) as usize;
            let end = (anchor + span).min(len);
            bytes[anchor..end].fill(0);
            anchor as u64
        }
    };
    storage.create(key, &bytes)?;
    Ok(affected)
}

impl Storage for FaultyStorage {
    fn create(&self, key: &str, data: &[u8]) -> gsd_io::Result<()> {
        self.decide("create", key, 0)?;
        self.inner.create(key, data)
    }

    fn read_at(&self, key: &str, offset: u64, buf: &mut [u8]) -> gsd_io::Result<()> {
        let op_index = self.decide("read", key, offset)?;
        self.inner.read_at(key, offset, buf)?;
        self.maybe_corrupt(key, offset, op_index, buf);
        Ok(())
    }

    fn read_unaccounted(&self, key: &str, offset: u64, buf: &mut [u8]) -> gsd_io::Result<()> {
        // The verification side channel reads the device's true at-rest
        // bytes: no fault draw, no in-flight corruption. (At-rest rot is
        // planted with `corrupt_object` and IS visible here.) Forwarding
        // explicitly also keeps the read off the accounted default path.
        self.inner.read_unaccounted(key, offset, buf)
    }

    fn write_at(&self, key: &str, offset: u64, data: &[u8]) -> gsd_io::Result<()> {
        self.decide("write", key, offset)?;
        self.inner.write_at(key, offset, data)
    }

    fn sync(&self) -> gsd_io::Result<()> {
        self.decide("sync", "", 0)?;
        self.inner.sync()
    }

    fn len(&self, key: &str) -> gsd_io::Result<u64> {
        self.inner.len(key)
    }

    fn exists(&self, key: &str) -> bool {
        self.inner.exists(key)
    }

    fn delete(&self, key: &str) -> gsd_io::Result<()> {
        self.inner.delete(key)
    }

    fn list_keys(&self) -> Vec<String> {
        self.inner.list_keys()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.inner.stats()
    }

    fn disk_model(&self) -> Option<DiskModel> {
        self.inner.disk_model()
    }

    fn counters(&self) -> Option<&CounterRegistry> {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_io::MemStorage;

    fn wrap(cfg: FaultConfig) -> (FaultyStorage, SharedStorage) {
        let inner: SharedStorage = Arc::new(MemStorage::new());
        (FaultyStorage::new(inner.clone(), cfg), inner)
    }

    #[test]
    fn zero_rates_are_transparent() -> std::io::Result<()> {
        let (faulty, _) = wrap(FaultConfig::transient(1, 0.0));
        faulty.create("k", &[1, 2, 3])?;
        let mut buf = [0u8; 3];
        for _ in 0..1000 {
            faulty.read_at("k", 0, &mut buf)?;
        }
        assert_eq!(faulty.injected_transient(), 0);
        Ok(())
    }

    #[test]
    fn transient_faults_are_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let (faulty, _) = wrap(FaultConfig::transient(seed, 0.3));
            faulty.create("k", &[0u8; 8]).ok();
            let mut buf = [0u8; 8];
            (0..200)
                .map(|_| faulty.read_at("k", 0, &mut buf).is_err())
                .collect()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same fault stream");
        assert_ne!(a, run(43), "different seed, different stream");
        let failures = a.iter().filter(|&&f| f).count();
        assert!(
            (30..=90).contains(&failures),
            "rate ~0.3, got {failures}/200"
        );
    }

    #[test]
    fn transient_faults_do_not_reach_inner_accounting() {
        let (faulty, inner) = wrap(FaultConfig::transient(7, 0.5));
        faulty.create("k", &[0u8; 8]).ok();
        inner.stats().reset();
        let mut buf = [0u8; 8];
        let mut ok = 0u64;
        for _ in 0..100 {
            if faulty.read_at("k", 0, &mut buf).is_ok() {
                ok += 1;
            }
        }
        assert!(faulty.injected_transient() > 0);
        let s = inner.stats().snapshot();
        assert_eq!(
            s.seq_read_ops + s.rand_read_ops,
            ok,
            "only successes counted"
        );
    }

    #[test]
    fn transient_errors_are_retryable_kind() {
        let (faulty, _) = wrap(FaultConfig::transient(3, 1.0));
        faulty
            .create("k", &[1])
            .expect_err("rate 1.0 fails create too");
        let mut buf = [0u8; 1];
        let err = faulty.read_at("k", 0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);
    }

    #[test]
    fn permanent_faults_follow_the_key_not_the_attempt() {
        let (faulty, _) = wrap(FaultConfig::transient(11, 0.0).with_permanent(0.5));
        // Find one doomed key and one healthy key.
        let keyname = |i: u32| format!("obj_{i}");
        let mut doomed = None;
        let mut healthy = None;
        for i in 0..64 {
            let key = keyname(i);
            match faulty.create(&key, &[0u8; 4]) {
                Err(_) => doomed = doomed.or(Some(key)),
                Ok(()) => healthy = healthy.or(Some(key)),
            }
        }
        let (doomed, healthy) = (doomed.expect("rate 0.5"), healthy.expect("rate 0.5"));
        let mut buf = [0u8; 4];
        for _ in 0..20 {
            let err = faulty.read_at(&doomed, 0, &mut buf).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Other, "permanent = not retryable");
            faulty
                .read_at(&healthy, 0, &mut buf)
                .expect("healthy key stays healthy");
        }
        assert!(faulty.injected_permanent() >= 20);
    }

    #[test]
    fn target_limits_the_blast_radius() {
        let cfg = FaultConfig::transient(5, 1.0).with_target(FaultTarget::key("blocks/"));
        let (faulty, _) = wrap(cfg);
        faulty
            .create("meta.json", &[1])
            .expect("untargeted key is safe");
        faulty
            .create("blocks/b_0_0.edges", &[1])
            .expect_err("targeted key faults");
    }

    #[test]
    fn offset_range_limits_positioned_ops() {
        let cfg = FaultConfig::transient(5, 1.0).with_target(FaultTarget {
            key_substring: String::new(),
            offsets: Some(100..200),
        });
        let (faulty, inner) = wrap(cfg);
        inner.create("k", &[0u8; 512]).unwrap();
        let mut buf = [0u8; 8];
        faulty
            .read_at("k", 0, &mut buf)
            .expect("offset 0 is outside the range");
        faulty
            .read_at("k", 150, &mut buf)
            .expect_err("offset 150 is targeted");
    }

    #[test]
    fn kill_at_op_fires_exactly_once_at_the_nth_op() {
        let (faulty, _) = wrap(FaultConfig::transient(9, 0.0).with_kill_at_op(3));
        faulty.create("k", &[0u8; 8]).expect("op 1");
        let mut buf = [0u8; 8];
        faulty.read_at("k", 0, &mut buf).expect("op 2");
        let err = faulty.read_at("k", 0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Other, "op 3 is the kill");
        faulty.read_at("k", 0, &mut buf).expect("op 4 proceeds");
    }

    #[test]
    fn corruption_modes_mangle_reads_deterministically() {
        for mode in [
            CorruptionMode::BitFlip,
            CorruptionMode::Truncate,
            CorruptionMode::ZeroFill,
        ] {
            let run = |seed: u64| -> Vec<Vec<u8>> {
                let cfg = FaultConfig::transient(seed, 0.0).with_corruption(mode, 0.5);
                let (faulty, _) = wrap(cfg);
                faulty
                    .create("k", &(1u8..=64).collect::<Vec<u8>>())
                    .unwrap();
                let mut out = Vec::new();
                for _ in 0..50 {
                    let mut buf = [0u8; 64];
                    faulty.read_at("k", 0, &mut buf).unwrap();
                    out.push(buf.to_vec());
                }
                out
            };
            let a = run(13);
            assert_eq!(a, run(13), "same seed, same corruption ({mode})");
            let clean: Vec<u8> = (1u8..=64).collect();
            let bad = a.iter().filter(|b| **b != clean).count();
            assert!(
                (5..=45).contains(&bad),
                "rate 0.5 must corrupt some but not all reads ({mode}: {bad}/50)"
            );
        }
    }

    #[test]
    fn corrupted_reads_leave_at_rest_data_clean() {
        let cfg = FaultConfig::transient(7, 0.0).with_corruption(CorruptionMode::BitFlip, 1.0);
        let (faulty, inner) = wrap(cfg);
        let payload: Vec<u8> = (0u8..32).collect();
        faulty.create("k", &payload).unwrap();
        let mut buf = [0u8; 32];
        faulty.read_at("k", 0, &mut buf).unwrap();
        assert_ne!(buf.to_vec(), payload, "accounted read is corrupted");
        assert!(faulty.injected_corrupt() > 0);
        assert_eq!(inner.read_all("k").unwrap(), payload, "at rest: clean");
        let mut side = [0u8; 32];
        faulty.read_unaccounted("k", 0, &mut side).unwrap();
        assert_eq!(side.to_vec(), payload, "side channel sees true bytes");
    }

    #[test]
    fn corrupt_object_rots_each_mode_at_rest() {
        let storage = MemStorage::new();
        let payload: Vec<u8> = (1u8..=100).collect();

        storage.create("a", &payload).unwrap();
        let off = corrupt_object(&storage, "a", CorruptionMode::BitFlip, 5).unwrap();
        let rotted = storage.read_all("a").unwrap();
        assert_eq!(rotted.len(), payload.len());
        assert_ne!(rotted, payload);
        assert_ne!(rotted[off as usize], payload[off as usize]);

        storage.create("b", &payload).unwrap();
        let kept = corrupt_object(&storage, "b", CorruptionMode::Truncate, 5).unwrap();
        let rotted = storage.read_all("b").unwrap();
        assert_eq!(rotted.len() as u64, kept);
        assert!(rotted.len() < payload.len());
        assert_eq!(rotted[..], payload[..rotted.len()]);

        storage.create("c", &payload).unwrap();
        let anchor = corrupt_object(&storage, "c", CorruptionMode::ZeroFill, 5).unwrap();
        let rotted = storage.read_all("c").unwrap();
        assert_eq!(rotted.len(), payload.len());
        assert_ne!(rotted, payload);
        assert_eq!(rotted[anchor as usize], 0);
        assert_ne!(payload[anchor as usize], 0);

        // Deterministic in (seed, key): same call, same rot.
        storage.create("d", &payload).unwrap();
        storage.create("e", &payload).unwrap();
        corrupt_object(&storage, "d", CorruptionMode::BitFlip, 9).unwrap();
        corrupt_object(&storage, "e", CorruptionMode::BitFlip, 9).unwrap();
        assert_ne!(
            storage.read_all("d").unwrap(),
            storage.read_all("e").unwrap(),
            "different keys draw different bits"
        );
    }

    #[test]
    fn corrupt_object_rejects_hopeless_targets() {
        let storage = MemStorage::new();
        storage.create("empty", &[]).unwrap();
        assert!(corrupt_object(&storage, "empty", CorruptionMode::BitFlip, 1).is_err());
        storage.create("zeros", &[0u8; 16]).unwrap();
        assert!(corrupt_object(&storage, "zeros", CorruptionMode::ZeroFill, 1).is_err());
        assert!(corrupt_object(&storage, "missing", CorruptionMode::BitFlip, 1).is_err());
    }

    #[test]
    fn corruption_mode_parsing() {
        assert_eq!(
            CorruptionMode::parse("bitflip"),
            Some(CorruptionMode::BitFlip)
        );
        assert_eq!(
            CorruptionMode::parse("truncate"),
            Some(CorruptionMode::Truncate)
        );
        assert_eq!(
            CorruptionMode::parse("zerofill"),
            Some(CorruptionMode::ZeroFill)
        );
        assert_eq!(CorruptionMode::parse("garble"), None);
        for mode in [
            CorruptionMode::BitFlip,
            CorruptionMode::Truncate,
            CorruptionMode::ZeroFill,
        ] {
            assert_eq!(CorruptionMode::parse(&mode.to_string()), Some(mode));
        }
    }

    #[test]
    fn parse_accepts_seed_colon_rate() {
        let cfg = FaultConfig::parse("42:0.02").expect("valid spec");
        assert_eq!(cfg.seed, 42);
        assert!((cfg.transient_rate - 0.02).abs() < 1e-12);
        assert!(FaultConfig::parse("42").is_none());
        assert!(FaultConfig::parse("x:0.1").is_none());
        assert!(FaultConfig::parse("1:1.5").is_none());
    }
}
