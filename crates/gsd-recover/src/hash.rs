//! Checksums and fingerprints used by the checkpoint format.
//!
//! These originated here and moved to `gsd-integrity` when the grid
//! format grew per-object checksums (the grid crates sit below this one
//! in the dependency graph and must not pull in checkpoint machinery).
//! Re-exported unchanged so existing `gsd_recover::crc32` callers and the
//! `GSDSNAP1` snapshot format keep working byte-for-byte.

pub use gsd_integrity::{crc32, fnv64};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_matches_snapshot_format_vectors() {
        // The snapshot format depends on these exact values; they must
        // survive the move to gsd-integrity.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
