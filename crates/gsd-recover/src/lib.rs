//! Fault tolerance for GraphSD: iteration-granular checkpointing, crash
//! recovery, and deterministic fault injection.
//!
//! GraphSD's BSP semantics give a clean recovery point: between driver-loop
//! iterations the complete system state is the committed vertex values plus
//! the frontier/accumulator bitmaps (see DESIGN.md §13). This crate turns
//! that observation into three cooperating pieces:
//!
//! * **Checkpointing** — [`CheckpointStore`] serializes a
//!   [`CheckpointData`] (values, accumulator, frontiers, cumulative
//!   [`gsd_runtime::RunStats`], engine-specific extras) into a versioned,
//!   per-section CRC32-checksummed snapshot and commits it with
//!   write-temp + [`gsd_io::Storage::sync`] + atomic rename; a JSON
//!   [`Manifest`] recording graph fingerprint, algorithm id, config hash
//!   and iteration number is the commit point. Stale checkpoints are
//!   garbage-collected by a keep-last-K retention policy.
//! * **Recovery** — engines accept a [`RecoveryConfig`]
//!   (`GSD_CKPT_EVERY`/`GSD_CKPT_DIR` env defaults) and resume from the
//!   latest manifest whose fingerprints match, producing bit-identical
//!   final values to an uninterrupted run.
//! * **Fault injection + retry** — [`FaultyStorage`] injects
//!   deterministic, seed-driven transient and permanent I/O errors over
//!   any [`gsd_io::Storage`]; [`RetryingStorage`] retries the retryable
//!   kinds with bounded exponential backoff, distinguishing them from
//!   fatal errors, and emits `IoRetry`/`IoGaveUp` trace events and
//!   counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod hash;
pub mod manifest;
pub mod retry;
pub mod snapshot;
pub mod store;

pub use config::RecoveryConfig;
pub use fault::{corrupt_object, CorruptionMode, FaultConfig, FaultTarget, FaultyStorage};
pub use hash::{crc32, fnv64};
pub use manifest::{Manifest, ManifestTag, MANIFEST_VERSION};
pub use retry::{RetryPolicy, RetryingStorage};
pub use snapshot::CheckpointData;
pub use store::{graph_fingerprint, CheckpointStore};
