//! The versioned, checksummed snapshot format.
//!
//! A snapshot is the complete engine state at a driver-loop boundary:
//!
//! ```text
//! magic "GSDSNAP1" | section_count: u32 LE
//! per section:
//!   name_len: u32 | name (utf-8) | payload_len: u64 | crc32: u32 | payload
//! ```
//!
//! Sections are individually CRC32-checksummed so a torn write or bit rot
//! anywhere in the object is detected on load, and named so the format
//! can grow sections without a version bump. Vertex values and
//! accumulators are stored as the `u64` bit patterns of
//! `gsd_runtime::Value::to_bits`, which is what makes resumed runs
//! *bit-identical* — no float round-trips through text.

use gsd_runtime::RunStats;
use std::io::{Error, ErrorKind};

const MAGIC: &[u8; 8] = b"GSDSNAP1";

/// Complete engine state at one committed iteration boundary.
///
/// `values`/`accum` hold `Value::to_bits` bit patterns; `frontier` and
/// `touched` are sorted member lists of the corresponding bitmaps. The
/// `extra` section is an engine-private payload (GraphSD stores its
/// scheduler-decision log and sub-block buffer residency there) that the
/// format carries opaquely.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// Last committed iteration this state reflects.
    pub iteration: u32,
    /// Committed vertex values (`val_t`), one bit pattern per vertex.
    pub values: Vec<u64>,
    /// Pre-seeded next-iteration accumulator (cross-iteration updates).
    pub accum: Vec<u64>,
    /// Active-vertex frontier for the next iteration.
    pub frontier: Vec<u32>,
    /// Vertices with pre-seeded accumulator contributions awaiting their
    /// apply barrier.
    pub touched: Vec<u32>,
    /// Cumulative run statistics up to (and including) `iteration`,
    /// with checkpoint traffic already excluded from `stats.io`.
    pub stats: RunStats,
    /// Opaque engine-specific state (serialized by the engine).
    pub extra: Vec<u8>,
}

fn push_section(out: &mut Vec<u8>, name: &str, payload: &[u8]) {
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crate::hash::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn u64s_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn u32s_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn corrupt(what: &str) -> Error {
    Error::new(ErrorKind::InvalidData, format!("corrupt snapshot: {what}"))
}

fn bytes_to_u64s(bytes: &[u8], section: &str) -> std::io::Result<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(corrupt(&section_len(section)));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

fn bytes_to_u32s(bytes: &[u8], section: &str) -> std::io::Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(corrupt(&section_len(section)));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn section_len(section: &str) -> String {
    format!("section {section} has a misaligned length")
}

impl CheckpointData {
    /// Serializes the snapshot to its binary form.
    pub fn encode(&self) -> Vec<u8> {
        let sections: Vec<(&str, Vec<u8>)> = vec![
            ("iteration", self.iteration.to_le_bytes().to_vec()),
            ("values", u64s_to_bytes(&self.values)),
            ("accum", u64s_to_bytes(&self.accum)),
            ("frontier", u32s_to_bytes(&self.frontier)),
            ("touched", u32s_to_bytes(&self.touched)),
            ("stats", serde_json::to_vec(&self.stats).unwrap_or_default()),
            ("extra", self.extra.clone()),
        ];
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (name, payload) in &sections {
            push_section(&mut out, name, payload);
        }
        out
    }

    /// Parses and validates a binary snapshot: magic, section framing and
    /// every section's CRC32. Any mismatch is `ErrorKind::InvalidData`.
    pub fn decode(blob: &[u8]) -> std::io::Result<Self> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> std::io::Result<&[u8]> {
            let end = at
                .checked_add(n)
                .ok_or_else(|| corrupt("length overflow"))?;
            if end > blob.len() {
                return Err(corrupt("truncated"));
            }
            let slice = &blob[*at..end];
            *at = end;
            Ok(slice)
        };
        if take(&mut at, 8)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let count_bytes = take(&mut at, 4)?;
        let count = u32::from_le_bytes([
            count_bytes[0],
            count_bytes[1],
            count_bytes[2],
            count_bytes[3],
        ]);

        let mut iteration = None;
        let mut values = None;
        let mut accum = None;
        let mut frontier = None;
        let mut touched = None;
        let mut stats = None;
        let mut extra = None;
        for _ in 0..count {
            let nb = take(&mut at, 4)?;
            let name_len = u32::from_le_bytes([nb[0], nb[1], nb[2], nb[3]]) as usize;
            let name = std::str::from_utf8(take(&mut at, name_len)?)
                .map_err(|_| corrupt("non-utf8 section name"))?
                .to_string();
            let lb = take(&mut at, 8)?;
            let payload_len =
                u64::from_le_bytes([lb[0], lb[1], lb[2], lb[3], lb[4], lb[5], lb[6], lb[7]])
                    as usize;
            let cb = take(&mut at, 4)?;
            let want_crc = u32::from_le_bytes([cb[0], cb[1], cb[2], cb[3]]);
            let payload = take(&mut at, payload_len)?;
            if crate::hash::crc32(payload) != want_crc {
                return Err(corrupt(&format!("crc mismatch in section {name}")));
            }
            match name.as_str() {
                "iteration" => {
                    if payload.len() != 4 {
                        return Err(corrupt(&section_len("iteration")));
                    }
                    iteration = Some(u32::from_le_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]));
                }
                "values" => values = Some(bytes_to_u64s(payload, "values")?),
                "accum" => accum = Some(bytes_to_u64s(payload, "accum")?),
                "frontier" => frontier = Some(bytes_to_u32s(payload, "frontier")?),
                "touched" => touched = Some(bytes_to_u32s(payload, "touched")?),
                "stats" => {
                    stats = Some(
                        serde_json::from_slice(payload)
                            .map_err(|e| corrupt(&format!("stats section: {e}")))?,
                    )
                }
                "extra" => extra = Some(payload.to_vec()),
                // Unknown sections from a newer writer are skipped: they
                // were CRC-validated above, and the known set is complete.
                _ => {}
            }
        }
        if at != blob.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(CheckpointData {
            iteration: iteration.ok_or_else(|| corrupt("missing section iteration"))?,
            values: values.ok_or_else(|| corrupt("missing section values"))?,
            accum: accum.ok_or_else(|| corrupt("missing section accum"))?,
            frontier: frontier.ok_or_else(|| corrupt("missing section frontier"))?,
            touched: touched.ok_or_else(|| corrupt("missing section touched"))?,
            stats: stats.ok_or_else(|| corrupt("missing section stats"))?,
            extra: extra.ok_or_else(|| corrupt("missing section extra"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        let mut stats = RunStats::new("graphsd", "pagerank");
        stats.iterations = 3;
        stats.cross_iter_edges = 17;
        CheckpointData {
            iteration: 3,
            values: vec![0, u64::MAX, 0x0123_4567_89ab_cdef],
            accum: vec![1, 2, 3],
            frontier: vec![0, 2],
            touched: vec![1],
            stats,
            extra: b"{\"decisions\":[]}".to_vec(),
        }
    }

    #[test]
    fn roundtrips() {
        let data = sample();
        let blob = data.encode();
        let back = CheckpointData::decode(&blob).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_state_roundtrips() {
        let data = CheckpointData {
            iteration: 0,
            values: vec![],
            accum: vec![],
            frontier: vec![],
            touched: vec![],
            stats: RunStats::new("x", "y"),
            extra: vec![],
        };
        assert_eq!(CheckpointData::decode(&data.encode()).unwrap(), data);
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let blob = sample().encode();
        // Flip one bit in every byte position; decode must never silently
        // succeed with different content.
        for pos in 0..blob.len() {
            let mut bad = blob.clone();
            bad[pos] ^= 0x40;
            match CheckpointData::decode(&bad) {
                Err(e) => assert_eq!(e.kind(), ErrorKind::InvalidData, "pos {pos}"),
                Ok(decoded) => assert_eq!(decoded, sample(), "pos {pos}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let blob = sample().encode();
        for cut in 0..blob.len() {
            assert!(
                CheckpointData::decode(&blob[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
    }
}
