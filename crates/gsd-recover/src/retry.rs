//! Bounded retry with backoff for transient I/O errors.
//!
//! [`RetryingStorage`] sits above a (possibly faulty) backend and retries
//! attempts that fail with a *retryable* kind — `Interrupted`,
//! `WouldBlock` or `TimedOut` — up to a bounded number of attempts with
//! exponential backoff. Anything else (corruption, missing keys,
//! permission, injected permanent faults) propagates immediately:
//! retrying cannot fix it and would only mask the bug.
//!
//! Every retry is observable twice over: the shared [`IoStats`] counters
//! (`retried_ops` / `gave_up_ops`, which flow into each run's
//! `RunStats.io`) and the trace stream (`IoRetry` / `IoGaveUp` events).

use gsd_io::{DiskModel, IoStats, SharedStorage, Storage};
use gsd_trace::{CounterRegistry, TraceEvent, TraceSink};
use std::io::ErrorKind;
use std::sync::Arc;
use std::time::Duration;

/// How hard to try before declaring a transient error fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (≥ 1).
    pub max_attempts: u32,
    /// Sleep before retry `n` is `base_backoff · 2^(n-1)`. The default is
    /// zero: simulated backends fail deterministically and re-draw per
    /// attempt, so waiting buys nothing; real deployments set a small
    /// base (e.g. 10 ms) to ride out device hiccups.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and no backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Sets the backoff before the first retry (doubles each retry).
    pub fn with_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }
}

/// Whether one more attempt could plausibly succeed.
fn retryable(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    )
}

/// A [`Storage`] decorator that retries transient failures (see the
/// module docs for the policy).
pub struct RetryingStorage {
    inner: SharedStorage,
    policy: RetryPolicy,
    trace: Arc<dyn TraceSink>,
}

impl RetryingStorage {
    /// Wraps `inner` with retry handling under `policy`.
    pub fn new(inner: SharedStorage, policy: RetryPolicy) -> Self {
        RetryingStorage {
            inner,
            policy,
            trace: gsd_trace::null_sink(),
        }
    }

    /// Routes `IoRetry`/`IoGaveUp` events to `trace`.
    pub fn set_trace(&mut self, trace: Arc<dyn TraceSink>) {
        self.trace = trace;
    }

    /// The policy attempts run under.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    fn with_retry<T>(
        &self,
        op: &'static str,
        mut attempt_once: impl FnMut() -> gsd_io::Result<T>,
    ) -> gsd_io::Result<T> {
        let mut attempt = 1u32;
        loop {
            match attempt_once() {
                Ok(value) => return Ok(value),
                Err(err) if !retryable(err.kind()) => return Err(err),
                Err(err) => {
                    if attempt >= self.policy.max_attempts {
                        self.inner.stats().record_giveup();
                        if self.trace.enabled() {
                            self.trace.emit(&TraceEvent::IoGaveUp {
                                op,
                                attempts: attempt,
                            });
                        }
                        return Err(err);
                    }
                    self.inner.stats().record_retry();
                    if self.trace.enabled() {
                        self.trace.emit(&TraceEvent::IoRetry { op, attempt });
                    }
                    let backoff = self.policy.base_backoff * 2u32.saturating_pow(attempt - 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

impl Storage for RetryingStorage {
    fn create(&self, key: &str, data: &[u8]) -> gsd_io::Result<()> {
        self.with_retry("create", || self.inner.create(key, data))
    }

    fn read_at(&self, key: &str, offset: u64, buf: &mut [u8]) -> gsd_io::Result<()> {
        self.with_retry("read", || self.inner.read_at(key, offset, buf))
    }

    fn read_unaccounted(&self, key: &str, offset: u64, buf: &mut [u8]) -> gsd_io::Result<()> {
        // Must forward explicitly: the trait default would route the
        // verification side channel through the *accounted* read path.
        // Transient errors are still retried — the side read rides the
        // same flaky device.
        self.with_retry("read", || self.inner.read_unaccounted(key, offset, buf))
    }

    fn write_at(&self, key: &str, offset: u64, data: &[u8]) -> gsd_io::Result<()> {
        self.with_retry("write", || self.inner.write_at(key, offset, data))
    }

    fn sync(&self) -> gsd_io::Result<()> {
        self.with_retry("sync", || self.inner.sync())
    }

    fn len(&self, key: &str) -> gsd_io::Result<u64> {
        self.inner.len(key)
    }

    fn exists(&self, key: &str) -> bool {
        self.inner.exists(key)
    }

    fn delete(&self, key: &str) -> gsd_io::Result<()> {
        self.inner.delete(key)
    }

    fn list_keys(&self) -> Vec<String> {
        self.inner.list_keys()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.inner.stats()
    }

    fn disk_model(&self) -> Option<DiskModel> {
        self.inner.disk_model()
    }

    fn counters(&self) -> Option<&CounterRegistry> {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultyStorage};
    use gsd_io::MemStorage;
    use gsd_trace::RingRecorder;

    fn stack(cfg: FaultConfig, policy: RetryPolicy) -> (RetryingStorage, SharedStorage) {
        let mem: SharedStorage = Arc::new(MemStorage::new());
        let faulty: SharedStorage = Arc::new(FaultyStorage::new(mem.clone(), cfg));
        (RetryingStorage::new(faulty, policy), mem)
    }

    #[test]
    fn rides_out_transient_faults() -> std::io::Result<()> {
        let (retrying, _) = stack(FaultConfig::transient(42, 0.4), RetryPolicy::attempts(10));
        retrying.create("k", &[0u8; 64])?;
        let mut buf = [0u8; 64];
        for _ in 0..200 {
            retrying.read_at("k", 0, &mut buf)?;
        }
        let s = retrying.stats().snapshot();
        assert!(s.retried_ops > 0, "rate 0.4 must have retried");
        assert_eq!(s.gave_up_ops, 0, "10 attempts at rate 0.4 cannot all fail");
        Ok(())
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let (retrying, _) = stack(FaultConfig::transient(1, 1.0), RetryPolicy::attempts(3));
        let err = retrying.create("k", &[1]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);
        let s = retrying.stats().snapshot();
        assert_eq!(s.retried_ops, 2, "attempts 1 and 2 retried");
        assert_eq!(s.gave_up_ops, 1, "attempt 3 gave up");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mem: SharedStorage = Arc::new(MemStorage::new());
        let retrying = RetryingStorage::new(mem, RetryPolicy::attempts(5));
        let mut buf = [0u8; 4];
        let err = retrying.read_at("missing", 0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        let s = retrying.stats().snapshot();
        assert_eq!(s.retried_ops, 0);
        assert_eq!(s.gave_up_ops, 0);
    }

    #[test]
    fn emits_retry_and_giveup_events() {
        let (mut retrying, _) = stack(FaultConfig::transient(1, 1.0), RetryPolicy::attempts(2));
        let sink = Arc::new(RingRecorder::new(16));
        retrying.set_trace(sink.clone());
        retrying.create("k", &[1]).unwrap_err();
        let kinds: Vec<&'static str> = sink.events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["io_retry", "io_gave_up"]);
    }

    #[test]
    fn successful_retries_keep_accounting_identical_to_a_clean_run() -> std::io::Result<()> {
        // The faulty stack (with enough attempts to always succeed) must
        // report byte-identical traffic to a fault-free run of the same
        // request sequence — failed attempts never reach the backend.
        let drive = |storage: &dyn Storage| -> std::io::Result<()> {
            storage.create("k", &[0u8; 256])?;
            let mut buf = [0u8; 32];
            for i in 0..8 {
                storage.read_at("k", i * 32, &mut buf)?;
            }
            storage.write_at("k", 0, &[7u8; 16])
        };
        let clean: SharedStorage = Arc::new(MemStorage::new());
        drive(clean.as_ref())?;
        let (retrying, mem) = stack(FaultConfig::transient(99, 0.3), RetryPolicy::attempts(64));
        drive(&retrying)?;
        let mut faulty_snap = mem.stats().snapshot();
        faulty_snap.retried_ops = 0;
        assert_eq!(faulty_snap, clean.stats().snapshot());
        Ok(())
    }

    #[test]
    fn backoff_doubles_but_is_bounded_by_attempts() {
        // Zero base: the loop must not sleep at all (no wall-clock
        // dependence in simulated runs); just exercise the path.
        let (retrying, _) = stack(
            FaultConfig::transient(1, 1.0),
            RetryPolicy::attempts(8).with_backoff(Duration::ZERO),
        );
        retrying.sync().unwrap_err();
        assert_eq!(retrying.stats().snapshot().gave_up_ops, 1);
    }
}
