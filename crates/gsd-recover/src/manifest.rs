//! The checkpoint manifest — the commit point of the checkpoint protocol.
//!
//! A snapshot is not a checkpoint until its manifest exists: the store
//! writes the snapshot object, syncs, then writes the manifest (both
//! through `Storage::create`'s write-temp + atomic rename), so a crash at
//! any point leaves either a complete checkpoint or none. On recovery the
//! manifest's identity fields are re-validated against the running
//! engine, and the snapshot's size and whole-object CRC32 against the
//! stored blob, before any state is restored.

use serde::{Deserialize, Serialize};

/// Manifest format version; bump on incompatible layout changes.
pub const MANIFEST_VERSION: u32 = 1;

/// Identity of the run a checkpoint belongs to. A checkpoint is only
/// eligible for resume when every field matches the resuming engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestTag {
    /// Engine name (`"graphsd"`, `"lumos"`, `"hus-graph"`).
    pub engine: String,
    /// Algorithm id as reported by `VertexProgram::name`.
    pub algorithm: String,
    /// Bytes per serialized vertex value.
    pub value_bytes: u64,
    /// Number of vertices.
    pub num_vertices: u32,
    /// FNV-1a/64 of the grid's `meta.json` (see
    /// [`crate::graph_fingerprint`]) — pins the checkpoint to one
    /// preprocessed graph.
    pub graph_fingerprint: u64,
    /// Hash of the semantically relevant engine configuration. Knobs that
    /// are contractually result-neutral (prefetch, checkpoint cadence)
    /// must not be folded in.
    pub config_hash: u64,
}

/// One committed checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Which run this checkpoint belongs to.
    pub tag: ManifestTag,
    /// Last committed iteration the snapshot captures.
    pub iteration: u32,
    /// Storage key of the snapshot object.
    pub snapshot_key: String,
    /// Size of the snapshot object in bytes.
    pub snapshot_bytes: u64,
    /// CRC32 of the entire snapshot object.
    pub snapshot_crc: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let m = Manifest {
            version: MANIFEST_VERSION,
            tag: ManifestTag {
                engine: "graphsd".into(),
                algorithm: "pagerank".into(),
                value_bytes: 8,
                num_vertices: 1000,
                graph_fingerprint: 0xdead_beef,
                config_hash: 42,
            },
            iteration: 7,
            snapshot_key: "ckpt/snap_0000000007.bin".into(),
            snapshot_bytes: 1234,
            snapshot_crc: 0x0102_0304,
        };
        let json = serde_json::to_vec(&m).unwrap();
        let back: Manifest = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, m);
    }
}
