//! Cross-system run machinery: prepare a system's on-disk format on a
//! fresh simulated disk, run one of the paper's four algorithms, and
//! collect timing / traffic / preprocessing outcomes.

use crate::datasets::Dataset;
use gsd_algos::{ConnectedComponents, PageRank, PageRankDelta, Sssp};
use gsd_baselines::HusFormat;
use gsd_baselines::{
    build_hus_format, build_lumos_format, GridStreamEngine, HusGraphEngine, LumosEngine,
};
use gsd_core::{GraphSdConfig, GraphSdEngine, GridSession, PipelineConfig, SchedulerDecision};
use gsd_graph::{
    preprocess, CorruptionResponse, EdgeCodec, Graph, GridGraph, PreprocessConfig,
    PreprocessReport, VerifyPolicy,
};
use gsd_io::{DiskModel, SharedStorage, SimDisk};
use gsd_recover::{FaultConfig, FaultyStorage, RetryPolicy, RetryingStorage};
use gsd_runtime::{Engine, RunOptions, RunStats, VertexProgram};
use std::sync::Arc;
use std::time::Duration;

/// Which system (or GraphSD ablation) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Full GraphSD.
    GraphSd,
    /// GraphSD-b1: no cross-iteration update (§5.4).
    GraphSdB1,
    /// GraphSD-b2: no selective update (§5.4).
    GraphSdB2,
    /// GraphSD-b3: full I/O model always (§5.4).
    GraphSdB3,
    /// GraphSD-b4: on-demand I/O model always (§5.4).
    GraphSdB4,
    /// GraphSD without the sub-block buffer (Figure 12).
    GraphSdNoBuffer,
    /// HUS-Graph-like baseline.
    HusGraph,
    /// Lumos-like baseline.
    Lumos,
    /// GridGraph-like plain streaming baseline.
    GridStream,
}

impl SystemKind {
    /// Display label (matches the paper's figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::GraphSd => "GraphSD",
            SystemKind::GraphSdB1 => "GraphSD-b1",
            SystemKind::GraphSdB2 => "GraphSD-b2",
            SystemKind::GraphSdB3 => "GraphSD-b3",
            SystemKind::GraphSdB4 => "GraphSD-b4",
            SystemKind::GraphSdNoBuffer => "GraphSD-nobuf",
            SystemKind::HusGraph => "HUS-Graph",
            SystemKind::Lumos => "Lumos",
            SystemKind::GridStream => "GridGraph",
        }
    }

    /// The three systems of Figures 5–8.
    pub fn main_three() -> [SystemKind; 3] {
        [SystemKind::GraphSd, SystemKind::HusGraph, SystemKind::Lumos]
    }
}

/// The paper's four evaluation algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// PageRank, 5 iterations.
    Pr,
    /// PageRank-Delta, 20 iterations.
    PrD,
    /// Connected Components to convergence (on the symmetrized graph).
    Cc,
    /// SSSP to convergence (weighted graph, hub root).
    Sssp,
}

impl Algo {
    /// All four, in the paper's column order.
    pub fn all() -> [Algo; 4] {
        [Algo::Pr, Algo::PrD, Algo::Cc, Algo::Sssp]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Pr => "PR",
            Algo::PrD => "PR-D",
            Algo::Cc => "CC",
            Algo::Sssp => "SSSP",
        }
    }

    /// The graph variant this algorithm runs on.
    pub fn input<'a>(&self, dataset: &'a Dataset) -> &'a Graph {
        match self {
            Algo::Cc => dataset.symmetric(),
            Algo::Sssp => dataset.weighted(),
            _ => dataset.directed(),
        }
    }
}

/// Preprocessing outcome of one system on one input.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessOutcome {
    /// Wall-clock breakdown (load / partition / sort / write).
    pub report: PreprocessReport,
    /// Simulated device time of the preprocessing writes.
    pub sim_write_time: Duration,
}

impl PreprocessOutcome {
    /// Modeled preprocessing time: the compute phases (wall) plus the
    /// simulated time of writing the format to disk. This is the quantity
    /// Figure 8 compares.
    pub fn total_time(&self) -> Duration {
        self.report.load + self.report.partition + self.report.sort + self.sim_write_time
    }
}

/// Everything one `(system, dataset, algorithm)` run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// System label.
    pub system: &'static str,
    /// Run statistics (times, traffic, per-iteration detail).
    pub stats: RunStats,
    /// Preprocessing outcome for this system's format.
    pub preprocess: PreprocessOutcome,
    /// Scheduler decisions (GraphSD variants only; empty otherwise).
    pub decisions: Vec<SchedulerDecision>,
}

impl RunOutcome {
    /// Modeled execution time (I/O + compute + scheduler overhead).
    pub fn execution_time(&self) -> Duration {
        self.stats.execution_time()
    }
}

/// The interval count the paper's setup implies: the 5 % memory budget
/// must hold one edge block (grid row), i.e. `P = 20`, clamped for tiny
/// inputs.
pub fn paper_p(graph: &Graph) -> u32 {
    20u32.min(graph.num_vertices().max(1)).max(1)
}

/// Frontier fraction at which the on-demand and full I/O models should
/// break even (see [`scaled_disk_for`]).
const CROSSOVER_FRACTION: f64 = 0.10;

/// Builds the simulated disk for a graph of this size.
///
/// Scaling argument: experiments run on graphs ~10⁴–10⁵× smaller than the
/// paper's, but a real HDD's 8 ms seek does not shrink with them — with it,
/// *every* configuration is seek-bound and the on-demand model can never
/// win, which is not the regime two 500 GB HDDs with multi-GB datasets are
/// in. We therefore keep the HDD's bandwidths and scale the seek latency so
/// that the quantity that actually drives the paper's scheduler — the
/// ratio between "one seek per active vertex" and "stream the whole edge
/// set" — places the on-demand/full crossover at a meaningful frontier
/// fraction ([`CROSSOVER_FRACTION`] of `|V|`). The model's `rand_read_bps`
/// is derived consistently as the effective bandwidth of reading one
/// average vertex's edge list, so the scheduler's `C_r` estimates match
/// what the simulator charges.
/// Bandwidth slowdown that restores the paper's I/O-dominated regime
/// (56-91 % of execution time in disk I/O, Figure 6): our graphs are 10^4 x
/// smaller than the paper's but the CPU is not 10^4 x slower, so unscaled
/// bandwidths would make runs compute-bound and mask the I/O differences
/// the paper measures. The slowdown is virtual-clock accounting only.
const BANDWIDTH_SLOWDOWN: f64 = 8.0;

/// Builds the simulated disk the experiments run on: the HDD preset scaled
/// to the graph's size (see [`scaled_disk_from`] for the argument).
pub fn scaled_disk_for(graph: &Graph) -> DiskModel {
    scaled_disk_from(DiskModel::hdd(), graph)
}

/// [`scaled_disk_for`] generalized over the base device — used by the
/// storage-sensitivity extension experiment (the paper's future-work
/// direction: how do the gains change on faster devices?). The seek/sweep
/// crossover scaling is applied relative to the base device's own
/// seek-to-bandwidth ratio, so an SSD/NVMe keeps its proportionally
/// cheaper random access.
pub fn scaled_disk_from(base: DiskModel, graph: &Graph) -> DiskModel {
    let seq_read_bps = base.seq_read_bps / BANDWIDTH_SLOWDOWN;
    let seq_write_bps = base.seq_write_bps / BANDWIDTH_SLOWDOWN;
    let edge_bytes =
        (graph.num_edges() * EdgeCodec::new(graph.is_weighted()).edge_bytes() as u64) as f64;
    let v = graph.num_vertices().max(1) as f64;
    let sweep_secs = edge_bytes / seq_read_bps;
    // Faster devices keep their proportionally cheaper seeks: the HDD maps
    // to the canonical crossover fraction, an SSD/NVMe to a larger one.
    let seek_ratio = base.seek_latency.as_secs_f64() / DiskModel::hdd().seek_latency.as_secs_f64();
    let seek_secs = (seek_ratio * sweep_secs / (CROSSOVER_FRACTION * v)).clamp(1e-9, 8e-3);
    let avg_vertex_bytes = (edge_bytes / v).max(1.0);
    let rand_read_bps = avg_vertex_bytes / (seek_secs + avg_vertex_bytes / seq_read_bps);
    DiskModel {
        seq_read_bps,
        seq_write_bps,
        seek_latency: Duration::from_secs_f64(seek_secs),
        rand_read_bps,
        rand_write_bps: rand_read_bps * 0.8,
        ..base
    }
}

fn graphsd_config_of(kind: SystemKind) -> Option<GraphSdConfig> {
    Some(match kind {
        SystemKind::GraphSd => GraphSdConfig::full(),
        SystemKind::GraphSdB1 => GraphSdConfig::b1_no_cross_iteration(),
        SystemKind::GraphSdB2 => GraphSdConfig::b2_no_selective(),
        SystemKind::GraphSdB3 => GraphSdConfig::b3_always_full(),
        SystemKind::GraphSdB4 => GraphSdConfig::b4_always_on_demand(),
        SystemKind::GraphSdNoBuffer => GraphSdConfig::without_buffering(),
        _ => return None,
    })
}

/// Runs `algo` on `dataset` under `kind`, building the system's on-disk
/// format on a fresh simulated HDD (the paper's two-HDD, no-page-cache
/// setup) with the 5 % memory budget.
pub fn run_system(kind: SystemKind, dataset: &Dataset, algo: Algo) -> std::io::Result<RunOutcome> {
    let graph = algo.input(dataset);
    run_system_on(kind, graph, algo, dataset.root())
}

/// Like [`run_system`], with an explicit interval count instead of the
/// paper's P = 20 (the `ext_psweep` design-choice ablation).
pub fn run_system_with_p(
    kind: SystemKind,
    dataset: &Dataset,
    algo: Algo,
    p: u32,
) -> std::io::Result<RunOutcome> {
    let graph = algo.input(dataset);
    run_with_disk_p(kind, graph, algo, dataset.root(), scaled_disk_for(graph), p)
}

/// Like [`run_system`], with an explicit base storage device.
pub fn run_system_on_device(
    kind: SystemKind,
    dataset: &Dataset,
    algo: Algo,
    base_disk: DiskModel,
) -> std::io::Result<RunOutcome> {
    let graph = algo.input(dataset);
    run_with_disk(
        kind,
        graph,
        algo,
        dataset.root(),
        scaled_disk_from(base_disk, graph),
    )
}

/// Like [`run_system`], on an explicit graph (used by the shape tests).
pub fn run_system_on(
    kind: SystemKind,
    graph: &Graph,
    algo: Algo,
    root: u32,
) -> std::io::Result<RunOutcome> {
    run_with_disk(kind, graph, algo, root, scaled_disk_for(graph))
}

fn run_with_disk(
    kind: SystemKind,
    graph: &Graph,
    algo: Algo,
    root: u32,
    disk: DiskModel,
) -> std::io::Result<RunOutcome> {
    let p = paper_p(graph);
    run_with_disk_p(kind, graph, algo, root, disk, p)
}

/// Builds the simulated disk for a run, honouring `GSD_FAULT_INJECT`
/// (`"SEED:RATE"`): when set, the disk is wrapped in the deterministic
/// fault injector plus the bounded-retry layer from `gsd-recover`, so any
/// experiment doubles as a fault-tolerance exercise. Results are
/// unchanged — transient faults are retried until the operation passes —
/// only the `retried_ops` counter and `IoRetry` trace events appear.
fn bench_storage(disk: DiskModel) -> std::io::Result<SharedStorage> {
    let sim: SharedStorage = Arc::new(SimDisk::new(disk));
    match std::env::var("GSD_FAULT_INJECT") {
        Ok(spec) if !spec.is_empty() => {
            let cfg = FaultConfig::parse(&spec).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("GSD_FAULT_INJECT must be SEED:RATE with rate in [0, 1], got {spec:?}"),
                )
            })?;
            let faulty: SharedStorage = Arc::new(FaultyStorage::new(sim, cfg));
            let mut retrying = RetryingStorage::new(faulty, RetryPolicy::default());
            retrying.set_trace(crate::trace::current_sink());
            Ok(Arc::new(retrying))
        }
        _ => Ok(sim),
    }
}

/// Applies the `GSD_VERIFY` / `GSD_ON_CORRUPTION` environment defaults to
/// a freshly built grid, mirroring `gsd run --verify`. Unset (or `off`)
/// leaves the grid untouched so default benches stay byte-for-byte
/// identical to the unverified path.
fn apply_env_verification(grid: &mut GridGraph) -> std::io::Result<()> {
    let policy = VerifyPolicy::from_env().unwrap_or(VerifyPolicy::Off);
    if policy.is_off() {
        return Ok(());
    }
    grid.set_verification(policy, CorruptionResponse::from_env().unwrap_or_default())
}

fn run_with_disk_p(
    kind: SystemKind,
    graph: &Graph,
    algo: Algo,
    root: u32,
    disk: DiskModel,
    p: u32,
) -> std::io::Result<RunOutcome> {
    let storage: SharedStorage = bench_storage(disk)?;
    let edge_bytes = graph.num_edges() * EdgeCodec::new(graph.is_weighted()).edge_bytes() as u64;
    let budget = (edge_bytes / 20).max(1);

    // --- preprocessing (the system's own format) ---
    // All systems use degree-balanced intervals so power-law hubs do not
    // blow up single grid rows (every published system balances its
    // partitions one way or another).
    let gsd_pre = PreprocessConfig {
        degree_balanced: true,
        ..PreprocessConfig::graphsd("")
    }
    .with_intervals(p);
    let sim_before = storage.stats().sim_time();
    let (report, mut engine): (PreprocessReport, AnyEngine) = match kind {
        SystemKind::HusGraph => {
            let (mut format, report) = build_hus_format(graph, &storage, "", Some(p))?;
            apply_env_verification(&mut format.row)?;
            apply_env_verification(&mut format.col)?;
            (report, AnyEngine::Hus(HusGraphEngine::new(format)?))
        }
        SystemKind::Lumos => {
            let (mut grid, report) = build_lumos_format(graph, &storage, "", Some(p))?;
            apply_env_verification(&mut grid)?;
            (report, AnyEngine::Lumos(LumosEngine::new(grid)?))
        }
        SystemKind::GridStream => {
            let (_, report) = preprocess(graph, storage.as_ref(), &gsd_pre)?;
            let mut grid = GridGraph::open(storage.clone())?;
            apply_env_verification(&mut grid)?;
            (report, AnyEngine::Grid(GridStreamEngine::new(grid)?))
        }
        _ => {
            let (_, report) = preprocess(graph, storage.as_ref(), &gsd_pre)?;
            let mut grid = GridGraph::open(storage.clone())?;
            apply_env_verification(&mut grid)?;
            let config = graphsd_config_of(kind)
                .expect("graphsd variant")
                .with_memory_budget(budget);
            (report, AnyEngine::Gsd(GraphSdEngine::new(grid, config)?))
        }
    };
    engine.set_trace(crate::trace::current_sink());
    let sim_write_time = storage.stats().sim_time().saturating_sub(sim_before);
    let preprocess_outcome = PreprocessOutcome {
        report,
        sim_write_time,
    };

    // --- run ---
    let (stats, decisions) = engine.run_algo(algo, root)?;

    Ok(RunOutcome {
        system: kind.label(),
        stats,
        preprocess: preprocess_outcome,
        decisions,
    })
}

/// Type-erased engine wrapper.
pub(crate) enum AnyEngine {
    Gsd(GraphSdEngine),
    Hus(HusGraphEngine),
    Lumos(LumosEngine),
    Grid(GridStreamEngine),
}

impl AnyEngine {
    pub(crate) fn set_trace(&mut self, sink: std::sync::Arc<dyn gsd_trace::TraceSink>) {
        match self {
            AnyEngine::Gsd(e) => e.set_trace(sink),
            AnyEngine::Hus(e) => e.set_trace(sink),
            AnyEngine::Lumos(e) => e.set_trace(sink),
            AnyEngine::Grid(e) => e.set_trace(sink),
        }
    }

    fn run_program<P: VertexProgram>(
        &mut self,
        program: &P,
    ) -> std::io::Result<(RunStats, Vec<SchedulerDecision>)> {
        let options = RunOptions::default();
        match self {
            AnyEngine::Gsd(e) => {
                let r = e.run(program, &options)?;
                Ok((r.stats, e.last_decisions().to_vec()))
            }
            AnyEngine::Hus(e) => Ok((e.run(program, &options)?.stats, Vec::new())),
            AnyEngine::Lumos(e) => Ok((e.run(program, &options)?.stats, Vec::new())),
            AnyEngine::Grid(e) => Ok((e.run(program, &options)?.stats, Vec::new())),
        }
    }

    /// Runs one of the paper's four algorithms on the engine.
    pub(crate) fn run_algo(
        &mut self,
        algo: Algo,
        root: u32,
    ) -> std::io::Result<(RunStats, Vec<SchedulerDecision>)> {
        match algo {
            Algo::Pr => self.run_program(&PageRank::paper()),
            Algo::PrD => self.run_program(&PageRankDelta::paper()),
            Algo::Cc => self.run_program(&ConnectedComponents),
            Algo::Sssp => self.run_program(&Sssp::new(root)),
        }
    }
}

/// The paper's 5 % memory budget for a graph: one twentieth of its edge
/// bytes.
pub(crate) fn paper_budget(graph: &Graph) -> u64 {
    let edge_bytes = graph.num_edges() * EdgeCodec::new(graph.is_weighted()).edge_bytes() as u64;
    (edge_bytes / 20).max(1)
}

/// Preprocesses `kind`'s on-disk format for `graph` into `storage`
/// (under the empty prefix) without building an engine, so wall-time
/// benchmarks can pay the preprocessing cost once and reopen the format
/// per repeat with [`reopen_engine`].
pub(crate) fn prepare_format(
    kind: SystemKind,
    graph: &Graph,
    storage: &SharedStorage,
    p: u32,
) -> std::io::Result<PreprocessReport> {
    match kind {
        SystemKind::HusGraph => {
            let (_, report) = build_hus_format(graph, storage, "", Some(p))?;
            Ok(report)
        }
        SystemKind::Lumos => {
            let (_, report) = build_lumos_format(graph, storage, "", Some(p))?;
            Ok(report)
        }
        _ => {
            let config = PreprocessConfig {
                degree_balanced: true,
                ..PreprocessConfig::graphsd("")
            }
            .with_intervals(p);
            let (_, report) = preprocess(graph, storage.as_ref(), &config)?;
            Ok(report)
        }
    }
}

/// Opens `kind`'s engine over a format previously written by
/// [`prepare_format`] into `storage`. `prefetch` explicitly selects the
/// pipeline sizing (`None` disables it) on the engines that support one
/// (GraphSD variants, Lumos); `GSD_VERIFY` is honoured as in
/// [`run_system`].
pub(crate) fn reopen_engine(
    kind: SystemKind,
    storage: SharedStorage,
    budget: u64,
    prefetch: Option<PipelineConfig>,
) -> std::io::Result<AnyEngine> {
    match kind {
        SystemKind::HusGraph => {
            let mut row = GridGraph::open_with_prefix(storage.clone(), "row/")?;
            let mut col = GridGraph::open_with_prefix(storage, "col/")?;
            apply_env_verification(&mut row)?;
            apply_env_verification(&mut col)?;
            Ok(AnyEngine::Hus(HusGraphEngine::new(HusFormat { row, col })?))
        }
        SystemKind::Lumos => {
            let mut grid = GridGraph::open(storage)?;
            apply_env_verification(&mut grid)?;
            let mut engine = LumosEngine::new(grid)?;
            engine.set_prefetch(prefetch);
            Ok(AnyEngine::Lumos(engine))
        }
        SystemKind::GridStream => {
            let mut grid = GridGraph::open(storage)?;
            apply_env_verification(&mut grid)?;
            Ok(AnyEngine::Grid(GridStreamEngine::new(grid)?))
        }
        _ => {
            // GraphSD variants go through the same open-once session the
            // `run` CLI and the serve daemon use; `open_env` honours
            // `GSD_VERIFY` exactly like `apply_env_verification`.
            let session = GridSession::open_env(storage)?;
            let mut config = graphsd_config_of(kind)
                .expect("graphsd variant")
                .with_memory_budget(budget);
            config = match prefetch {
                Some(sizing) => config.with_prefetch(sizing),
                None => config.without_prefetch(),
            };
            Ok(AnyEngine::Gsd(session.engine(config)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Datasets, Scale};

    #[test]
    fn run_system_produces_stats_for_all_main_systems() {
        let ds = Datasets::load(Scale::Tiny);
        let d = ds.get("twitter_sim").unwrap();
        for kind in SystemKind::main_three() {
            let outcome = run_system(kind, d, Algo::Pr).unwrap();
            assert_eq!(outcome.stats.iterations, 5, "{}", kind.label());
            assert!(outcome.stats.io.total_traffic() > 0);
            assert!(outcome.execution_time() > Duration::ZERO);
            assert!(outcome.preprocess.total_time() > Duration::ZERO);
        }
    }

    #[test]
    fn decisions_only_for_graphsd() {
        let ds = Datasets::load(Scale::Tiny);
        let d = ds.get("uk_sim").unwrap();
        let gsd = run_system(SystemKind::GraphSd, d, Algo::Sssp).unwrap();
        assert!(!gsd.decisions.is_empty());
        let hus = run_system(SystemKind::HusGraph, d, Algo::Sssp).unwrap();
        assert!(hus.decisions.is_empty());
    }

    #[test]
    fn algo_inputs_pick_the_right_variant() {
        let ds = Datasets::load(Scale::Tiny);
        let d = ds.get("sk_sim").unwrap();
        assert!(Algo::Sssp.input(d).is_weighted());
        assert!(!Algo::Pr.input(d).is_weighted());
        assert!(Algo::Cc.input(d).num_edges() >= d.edges);
    }

    #[test]
    fn paper_p_is_twenty_for_real_inputs() {
        let ds = Datasets::load(Scale::Tiny);
        assert_eq!(paper_p(ds.get("twitter_sim").unwrap().directed()), 20);
    }
}
