//! CLI for the paper-experiment harness.
//!
//! ```text
//! experiments [ids...]        # run the named experiments (default: all)
//! GSD_SCALE=tiny|small|medium # workload scale (default small)
//! ```

use gsd_bench::experiments::{run_by_id, ALL_IDS};
use gsd_bench::{Datasets, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let scale = Scale::from_env();
    eprintln!("# GraphSD paper experiments — scale {scale:?} (set GSD_SCALE=tiny|small|medium)");
    let ds = Datasets::load(scale);
    for id in ids {
        let started = std::time::Instant::now();
        match run_by_id(id, &ds) {
            Ok(output) => {
                println!("{output}");
                eprintln!("# [{id}] done in {:.1}s\n", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("# [{id}] FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
