//! CLI for the paper-experiment harness.
//!
//! ```text
//! experiments [--trace FILE] [--metrics-out FILE] [--verbose]
//!             [--no-prefetch] [--prefetch-depth N] [--checkpoint-every N]
//!             [--resume] [--inject-faults SEED:RATE] [ids...]
//!
//! ids                         experiment ids (default: all); `e1`..`e10`
//!                             are shorthand for fig5..fig12, ext_storage,
//!                             ext_psweep
//! --trace FILE                stream every trace event as JSONL to FILE
//! --metrics-out FILE          aggregate every trace event into a labeled
//!                             metrics registry and write a snapshot to
//!                             FILE (Prometheus text format for
//!                             .prom/.txt, JSON otherwise)
//! --metrics-every N           additionally rewrite the snapshot every N
//!                             iterations while running (default: at the
//!                             end only)
//! --verbose                   live per-iteration table on stderr
//! --no-prefetch               fully synchronous reads (the CLI enables
//!                             the prefetch pipeline by default)
//! --prefetch-depth N          prefetch lookahead window (default 2)
//! --checkpoint-every N        checkpoint every N committed iterations
//!                             (engines resume from checkpoints by
//!                             default when any are found)
//! --resume                    force resume on even when the calling
//!                             environment set GSD_CKPT_RESUME=0
//! --inject-faults SEED:RATE   deterministic transient I/O faults at the
//!                             given per-operation rate, absorbed by the
//!                             bounded-retry layer (results unchanged)
//! --verify off|full|sample:N  checksum grid objects as runs read them
//!                             (default off; detected corruption fails
//!                             the experiment instead of skewing results)
//! GSD_SCALE=tiny|small|medium workload scale (default small)
//! ```
//!
//! The prefetch, checkpoint, fault and verify flags work by setting the
//! `GSD_PREFETCH*` / `GSD_CKPT_*` / `GSD_FAULT_INJECT` / `GSD_VERIFY`
//! environment variables before any engine is built; results are
//! bit-identical whichever way they are set — only wall time (and, for
//! faults, the retry counters) changes.
//!
//! Failures do not abort the batch: every requested experiment runs, a
//! failure summary is printed at the end, and the exit status is nonzero
//! iff at least one experiment failed.

use gsd_bench::experiments::{run_by_id, ALL_IDS};
use gsd_bench::trace::{install_trace_sink, VerboseSink};
use gsd_bench::{Datasets, Scale};
use gsd_trace::{FanoutSink, JsonlWriter, TraceSink};
use std::sync::Arc;

/// `e<N>` shorthand for the figure/extension experiments, in paper order.
const ALIASES: [(&str, &str); 10] = [
    ("e1", "fig5"),
    ("e2", "fig6"),
    ("e3", "fig7"),
    ("e4", "fig8"),
    ("e5", "fig9"),
    ("e6", "fig10"),
    ("e7", "fig11"),
    ("e8", "fig12"),
    ("e9", "ext_storage"),
    ("e10", "ext_psweep"),
];

fn resolve(id: &str) -> &str {
    ALIASES
        .iter()
        .find(|(alias, _)| *alias == id)
        .map_or(id, |(_, full)| *full)
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--trace FILE] [--metrics-out FILE] \
         [--metrics-every N] [--verbose] [--no-prefetch] \
         [--prefetch-depth N] [--checkpoint-every N] [--resume] \
         [--inject-faults SEED:RATE] [--verify off|full|sample:N] [ids...]"
    );
    eprintln!("known ids: {}", ALL_IDS.join(" "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<&str> = Vec::new();
    let mut trace_path: Option<&str> = None;
    let mut metrics_out: Option<&str> = None;
    let mut metrics_every: u64 = 0;
    let mut verbose = false;
    let mut prefetch = true;
    let mut prefetch_depth: Option<&str> = None;
    let mut checkpoint_every: Option<&str> = None;
    let mut resume = false;
    let mut inject_faults: Option<&str> = None;
    let mut verify: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path),
                None => usage(),
            },
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path),
                None => usage(),
            },
            "--metrics-every" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => metrics_every = n,
                None => usage(),
            },
            "--verbose" | "-v" => verbose = true,
            "--no-prefetch" => prefetch = false,
            "--prefetch-depth" => match it.next().map(String::as_str) {
                Some(n) if n.parse::<usize>().is_ok_and(|n| n >= 1) => prefetch_depth = Some(n),
                _ => usage(),
            },
            "--checkpoint-every" => match it.next().map(String::as_str) {
                Some(n) if n.parse::<u32>().is_ok_and(|n| n >= 1) => checkpoint_every = Some(n),
                _ => usage(),
            },
            "--resume" => resume = true,
            "--inject-faults" => match it.next().map(String::as_str) {
                Some(spec) if gsd_recover::FaultConfig::parse(spec).is_some() => {
                    inject_faults = Some(spec)
                }
                _ => usage(),
            },
            "--verify" => match it.next().map(String::as_str) {
                Some(spec) if gsd_integrity::VerifyPolicy::parse(spec).is_some() => {
                    verify = Some(spec)
                }
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(resolve(other)),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.to_vec();
    }

    // Engine configs consult GSD_PREFETCH* when they are built (deep
    // inside the runner), so the flags translate to the environment here,
    // before any engine exists. An explicit GSD_PREFETCH=0 in the calling
    // environment is overridden by the CLI's default-on policy.
    std::env::set_var("GSD_PREFETCH", if prefetch { "1" } else { "0" });
    if let Some(depth) = prefetch_depth {
        std::env::set_var("GSD_PREFETCH_DEPTH", depth);
    }
    if let Some(every) = checkpoint_every {
        std::env::set_var("GSD_CKPT_EVERY", every);
    }
    if resume {
        std::env::set_var("GSD_CKPT_RESUME", "1");
    }
    if let Some(spec) = inject_faults {
        std::env::set_var("GSD_FAULT_INJECT", spec);
    }
    if let Some(spec) = verify {
        std::env::set_var("GSD_VERIFY", spec);
    }

    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    if let Some(path) = trace_path {
        match JsonlWriter::create(path) {
            Ok(w) => sinks.push(Arc::new(w)),
            Err(e) => {
                eprintln!("# cannot create trace file {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let metrics: Option<Arc<gsd_metrics::MetricsSink>> = metrics_out
        .map(|path| Arc::new(gsd_metrics::MetricsSink::with_output(path, metrics_every)));
    if let Some(m) = &metrics {
        sinks.push(m.clone());
    }
    if verbose {
        sinks.push(Arc::new(VerboseSink::new()));
    }
    let sink: Option<Arc<dyn TraceSink>> = match sinks.len() {
        0 => None,
        1 => sinks.pop(),
        _ => Some(Arc::new(FanoutSink::new(sinks))),
    };
    if let Some(sink) = &sink {
        install_trace_sink(sink.clone());
    }

    let scale = Scale::from_env();
    eprintln!("# GraphSD paper experiments — scale {scale:?} (set GSD_SCALE=tiny|small|medium)");
    let ds = Datasets::load(scale);
    let mut failures: Vec<(&str, std::io::Error)> = Vec::new();
    for id in ids {
        let started = std::time::Instant::now();
        match run_by_id(id, &ds) {
            Ok(output) => {
                println!("{output}");
                eprintln!("# [{id}] done in {:.1}s\n", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("# [{id}] FAILED: {e}\n");
                failures.push((id, e));
            }
        }
    }
    if let Some(sink) = &sink {
        sink.flush();
    }
    if let Some(m) = &metrics {
        if m.write_errors() > 0 {
            eprintln!(
                "# warning: {} metrics snapshot write(s) failed",
                m.write_errors()
            );
        }
    }
    if !failures.is_empty() {
        eprintln!("# {} experiment(s) failed:", failures.len());
        for (id, e) in &failures {
            eprintln!("#   {id}: {e}");
        }
        std::process::exit(1);
    }
}
