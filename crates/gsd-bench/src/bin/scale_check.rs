//! One-off check: GraphSD-vs-Lumos margins on the web stand-in at the
//! current GSD_SCALE (used to validate the scaling claims in
//! EXPERIMENTS.md).
use gsd_bench::runner::{run_system, Algo, SystemKind};
use gsd_bench::{Datasets, Scale};

fn main() {
    let ds = Datasets::load(Scale::from_env());
    let d = ds.get("uk_sim").unwrap();
    for algo in [Algo::PrD, Algo::Cc] {
        let gsd = run_system(SystemKind::GraphSd, d, algo).unwrap();
        let lumos = run_system(SystemKind::Lumos, d, algo).unwrap();
        let hus = run_system(SystemKind::HusGraph, d, algo).unwrap();
        println!(
            "uk_sim {}: iterations {}, GraphSD {:.2}s, HUS {:.2}x, Lumos {:.2}x",
            algo.label(),
            gsd.stats.iterations,
            gsd.execution_time().as_secs_f64(),
            hus.execution_time().as_secs_f64() / gsd.execution_time().as_secs_f64(),
            lumos.execution_time().as_secs_f64() / gsd.execution_time().as_secs_f64(),
        );
    }
}
