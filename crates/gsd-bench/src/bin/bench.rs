//! CLI for the wall-time benchmark harness (`BENCH_*.json`).
//!
//! ```text
//! bench [--label S] [--warmup N] [--repeats N] [--out FILE]
//!       [--systems a,b] [--algos a,b] [--datasets a,b] [--no-prefetch]
//!       [--baseline FILE] [--trace FILE] [--metrics-out FILE]
//!       [--metrics-every N] [--verbose]
//! bench --check FILE
//!
//! --label S            report label; the default output file is
//!                      BENCH_<label>.json (default: local)
//! --warmup N           untimed warmup repeats per cell (default 1)
//! --repeats N          timed repeats per cell; the median is reported
//!                      (default 3)
//! --out FILE           output path (default BENCH_<label>.json in cwd)
//! --systems a,b        graphsd,hus,lumos,gridgraph (default: all four)
//! --algos a,b          pr,prd,cc,sssp (default: all four)
//! --datasets a,b       stand-in names, e.g. twitter_sim (default: all)
//! --no-prefetch        disable the prefetch pipeline
//! --baseline FILE      after running, compare the deterministic
//!                      counters (iterations, bytes moved, prefetch
//!                      totals) against a committed report; exit nonzero
//!                      on drift
//! --check FILE         validate FILE against the BENCH schema and exit
//! --trace FILE         stream trace events (including bench_repeat) as
//!                      JSONL to FILE
//! --metrics-out FILE   write a metrics snapshot (Prometheus text for
//!                      .prom/.txt, JSON otherwise) fed from the runs
//! --metrics-every N    additionally rewrite the snapshot every N
//!                      iterations during the run (default: end only)
//! --verbose            live per-iteration table on stderr
//! GSD_SCALE=tiny|small|medium   workload scale (default small)
//! ```
//!
//! Wall times and peak RSS vary between machines and are informational;
//! only the deterministic counters participate in `--baseline` gating.

use gsd_bench::trace::{install_trace_sink, VerboseSink};
use gsd_bench::wall::{run_wall, WallOptions};
use gsd_bench::{Algo, Scale, SystemKind};
use gsd_metrics::{BenchReport, MetricsSink};
use gsd_trace::{FanoutSink, JsonlWriter, TraceSink};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: bench [--label S] [--warmup N] [--repeats N] [--out FILE] \
         [--systems a,b] [--algos a,b] [--datasets a,b] [--no-prefetch] \
         [--baseline FILE] [--trace FILE] [--metrics-out FILE] \
         [--metrics-every N] [--verbose] | bench --check FILE"
    );
    eprintln!("systems: graphsd hus lumos gridgraph; algos: pr prd cc sssp");
    std::process::exit(2);
}

fn parse_system(name: &str) -> Option<SystemKind> {
    match name.to_ascii_lowercase().as_str() {
        "graphsd" | "gsd" => Some(SystemKind::GraphSd),
        "hus" | "hus-graph" | "husgraph" => Some(SystemKind::HusGraph),
        "lumos" => Some(SystemKind::Lumos),
        "gridgraph" | "gridstream" | "grid" => Some(SystemKind::GridStream),
        _ => None,
    }
}

fn parse_algo(name: &str) -> Option<Algo> {
    match name.to_ascii_lowercase().as_str() {
        "pr" => Some(Algo::Pr),
        "prd" | "pr-d" => Some(Algo::PrD),
        "cc" => Some(Algo::Cc),
        "sssp" => Some(Algo::Sssp),
        _ => None,
    }
}

fn parse_list<T>(spec: &str, parse: impl Fn(&str) -> Option<T>) -> Option<Vec<T>> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

fn check_file(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("# cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match BenchReport::from_json(&text) {
        Ok(report) => {
            println!(
                "{path}: valid BENCH schema v{} — {} entr{} at scale {}",
                report.schema_version,
                report.entries.len(),
                if report.entries.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.scale,
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = WallOptions {
        scale: Scale::from_env(),
        ..WallOptions::default()
    };
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_every: u64 = 0;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => match it.next() {
                Some(path) => check_file(path),
                None => usage(),
            },
            "--label" => match it.next() {
                Some(label) if !label.is_empty() => opts.label = label.clone(),
                _ => usage(),
            },
            "--warmup" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => opts.warmup = n,
                None => usage(),
            },
            "--repeats" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => opts.repeats = n,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => usage(),
            },
            "--systems" => match it.next().and_then(|s| parse_list(s, parse_system)) {
                Some(systems) if !systems.is_empty() => opts.systems = systems,
                _ => usage(),
            },
            "--algos" => match it.next().and_then(|s| parse_list(s, parse_algo)) {
                Some(algos) if !algos.is_empty() => opts.algos = algos,
                _ => usage(),
            },
            "--datasets" => match it.next() {
                Some(spec) => {
                    opts.datasets = spec
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect()
                }
                None => usage(),
            },
            "--no-prefetch" => opts.prefetch = false,
            "--baseline" => match it.next() {
                Some(path) => baseline = Some(path.clone()),
                None => usage(),
            },
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => usage(),
            },
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path.clone()),
                None => usage(),
            },
            "--metrics-every" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => metrics_every = n,
                None => usage(),
            },
            "--verbose" | "-v" => verbose = true,
            _ => usage(),
        }
    }

    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    if let Some(path) = &trace_path {
        match JsonlWriter::create(path) {
            Ok(w) => sinks.push(Arc::new(w)),
            Err(e) => {
                eprintln!("# cannot create trace file {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let metrics: Option<Arc<MetricsSink>> = metrics_out
        .as_ref()
        .map(|path| Arc::new(MetricsSink::with_output(path, metrics_every)));
    if let Some(m) = &metrics {
        sinks.push(m.clone());
    }
    if verbose {
        sinks.push(Arc::new(VerboseSink::new()));
    }
    let sink: Option<Arc<dyn TraceSink>> = match sinks.len() {
        0 => None,
        1 => sinks.pop(),
        _ => Some(Arc::new(FanoutSink::new(sinks))),
    };
    if let Some(sink) = &sink {
        install_trace_sink(sink.clone());
    }

    eprintln!(
        "# wall-time bench — scale {:?}, {} warmup + {} timed repeats, prefetch {}",
        opts.scale,
        opts.warmup,
        opts.repeats,
        if opts.prefetch { "on" } else { "off" },
    );
    let report = match run_wall(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("# bench FAILED: {e}");
            std::process::exit(1);
        }
    };
    if let Some(sink) = &sink {
        sink.flush();
    }
    if let Some(m) = &metrics {
        if m.write_errors() > 0 {
            eprintln!(
                "# warning: {} metrics snapshot write(s) failed",
                m.write_errors()
            );
        }
    }

    for e in &report.entries {
        eprintln!(
            "# {:>12} {:>5} {:>12}  median {:>9} us  read {:>11} B  pf {}h/{}m",
            e.system,
            e.algorithm,
            e.dataset,
            e.wall_us_median,
            e.bytes_read,
            e.prefetch_hits,
            e.prefetch_misses,
        );
    }

    let out_path = out.unwrap_or_else(|| report.file_name());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("# cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} entries)", report.entries.len());

    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("# cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let base = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("# baseline {path} is invalid: {e}");
                std::process::exit(2);
            }
        };
        match report.compare_deterministic(&base) {
            Ok(n) => println!("baseline {path}: {n} cell(s) match on deterministic counters"),
            Err(drifts) => {
                eprintln!("# baseline {path}: deterministic counters DRIFTED:\n{drifts}");
                std::process::exit(1);
            }
        }
    }
}
