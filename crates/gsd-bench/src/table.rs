//! Minimal aligned-table formatter for experiment output.

use std::fmt::Write as _;

/// A simple text table with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut line = String::new();
        for (c, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[c]);
        }
        writeln!(f, "{}", line.trim_end())?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let mut line = String::new();
            for c in 0..cols {
                let _ = write!(line, "{:<w$}  ", row[c], w = widths[c]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a [`std::time::Duration`] in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats bytes as mebibytes with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio with 2 decimals and a trailing `x`.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_owned()
    } else {
        format!("{:.2}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push(vec!["a", "1"]);
        t.push(vec!["longer-name", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push(vec!["x"]);
        assert_eq!(t.len(), 1);
        let _ = t.to_string(); // must not panic
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
    }
}
