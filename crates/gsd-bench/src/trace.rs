//! Process-wide trace-sink installation for the harness.
//!
//! The experiment entry points ([`crate::runner`]) construct engines deep
//! inside `run_system`, far from the CLI that knows whether the user asked
//! for a trace. Rather than threading a sink through every call signature,
//! the binary installs one process-wide sink before running and the runner
//! hands [`current_sink`] to every engine it builds. The default (nothing
//! installed) is the disabled [`gsd_trace::NullSink`], so library users and
//! tests that never call [`install_trace_sink`] pay nothing.

use gsd_trace::{TraceEvent, TraceSink};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// Installs `sink` as the process-wide trace sink. Every engine built by
/// the runner from now on emits into it. Replaces any previous sink.
pub fn install_trace_sink(sink: Arc<dyn TraceSink>) {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = Some(sink);
}

/// The currently installed sink, or a disabled `NullSink` if none is.
pub fn current_sink() -> Arc<dyn TraceSink> {
    SINK.read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .unwrap_or_else(gsd_trace::null_sink)
}

/// A sink that prints a live per-iteration table to stderr (`--verbose`).
///
/// Columns: iteration, chosen I/O model, frontier size, the scheduler's
/// `S_seq`/`S_ran` byte estimates (blank for engines without a scheduler),
/// bytes read, sub-block buffer hits, prefetch-pipeline hits and misses
/// (a miss = the consumer stalled on or fell back to a synchronous read),
/// the accumulated stall time, and the scatter / apply / I/O-wait phase
/// times in microseconds.
#[derive(Default)]
pub struct VerboseSink {
    state: Mutex<VerboseState>,
}

#[derive(Default)]
struct VerboseState {
    s_seq: Option<u64>,
    s_ran: Option<u64>,
    buffer_hits: u64,
    prefetch_hits: u64,
    prefetch_misses: u64,
    stall_us: u64,
}

impl VerboseSink {
    /// A fresh verbose sink.
    pub fn new() -> Self {
        Self::default()
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

impl TraceSink for VerboseSink {
    fn emit(&self, event: &TraceEvent) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match event {
            TraceEvent::RunStart { engine, algorithm } => {
                *st = VerboseState::default();
                eprintln!("# trace: {engine} / {algorithm}");
                eprintln!(
                    "# {:>4}  {:>9}  {:>9}  {:>12}  {:>12}  {:>12}  {:>8}  {:>7}  {:>7}  {:>8}  {:>10}  {:>10}  {:>10}",
                    "iter",
                    "model",
                    "frontier",
                    "s_seq",
                    "s_ran",
                    "bytes_read",
                    "buf_hits",
                    "pf_hits",
                    "pf_miss",
                    "stall_us",
                    "scatter_us",
                    "apply_us",
                    "io_us"
                );
            }
            TraceEvent::SchedulerDecision { s_seq, s_ran, .. } => {
                st.s_seq = Some(*s_seq);
                st.s_ran = Some(*s_ran);
            }
            TraceEvent::BufferHit { .. } => st.buffer_hits += 1,
            TraceEvent::PrefetchHit { .. } => st.prefetch_hits += 1,
            TraceEvent::PrefetchStall { wait_us, .. } => {
                st.prefetch_misses += 1;
                st.stall_us += wait_us;
            }
            TraceEvent::IterationEnd {
                iteration,
                model,
                frontier,
                bytes_read,
                scatter_us,
                apply_us,
                io_wait_us,
            } => {
                eprintln!(
                    "# {:>4}  {:>9}  {:>9}  {:>12}  {:>12}  {:>12}  {:>8}  {:>7}  {:>7}  {:>8}  {:>10}  {:>10}  {:>10}",
                    iteration,
                    model.as_str(),
                    frontier,
                    opt(st.s_seq),
                    opt(st.s_ran),
                    bytes_read,
                    st.buffer_hits,
                    st.prefetch_hits,
                    st.prefetch_misses,
                    st.stall_us,
                    scatter_us,
                    apply_us,
                    io_wait_us
                );
                st.s_seq = None;
                st.s_ran = None;
                st.buffer_hits = 0;
                st.prefetch_hits = 0;
                st.prefetch_misses = 0;
                st.stall_us = 0;
            }
            // The verbose table only tracks per-iteration I/O behaviour;
            // the remaining events are intentionally not rendered, listed
            // explicitly so a new variant forces a decision here (GSD012).
            TraceEvent::RunEnd { .. }
            | TraceEvent::IterationStart { .. }
            | TraceEvent::BlockLoad { .. }
            | TraceEvent::SciuPass { .. }
            | TraceEvent::FciuPass { .. }
            | TraceEvent::BufferEviction { .. }
            | TraceEvent::ValueFlush { .. }
            | TraceEvent::PrefetchIssued { .. }
            | TraceEvent::CkptWritten { .. }
            | TraceEvent::CkptRestored { .. }
            | TraceEvent::IoRetry { .. }
            | TraceEvent::IoGaveUp { .. }
            | TraceEvent::ChecksumOk { .. }
            | TraceEvent::CorruptionDetected { .. }
            | TraceEvent::BlockRepaired { .. }
            | TraceEvent::BenchRepeat { .. }
            | TraceEvent::MetricsFlush { .. }
            | TraceEvent::ServeStarted { .. }
            | TraceEvent::QueryAccepted { .. }
            | TraceEvent::QueryCompleted { .. }
            | TraceEvent::CacheAdmit { .. }
            | TraceEvent::CacheEvict { .. }
            | TraceEvent::DeltaApplied { .. }
            | TraceEvent::CompactionStarted { .. }
            | TraceEvent::CompactionFinished { .. }
            | TraceEvent::IncrementalSeeded { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_trace::AccessModel;

    #[test]
    fn default_sink_is_disabled_null() {
        // Note: relies on no other test in this process having installed a
        // sink; install_* tests therefore install and never "uninstall".
        let sink = current_sink();
        // A RingRecorder installed afterwards must be returned verbatim.
        let ring = Arc::new(gsd_trace::RingRecorder::new(4));
        install_trace_sink(ring.clone());
        let got = current_sink();
        assert!(got.enabled());
        got.emit(&TraceEvent::IterationStart { iteration: 1 });
        assert_eq!(ring.len(), 1);
        // The pre-install default must have been disabled.
        assert!(!sink.enabled());
        install_trace_sink(gsd_trace::null_sink());
    }

    #[test]
    fn verbose_sink_tracks_decisions_and_hits() {
        let sink = VerboseSink::new();
        sink.emit(&TraceEvent::RunStart {
            engine: "graphsd",
            algorithm: "pr".to_string(),
        });
        sink.emit(&TraceEvent::SchedulerDecision {
            iteration: 1,
            s_seq: 100,
            s_ran: 40,
            cost_full: 1.0,
            cost_on_demand: 0.5,
            chosen: AccessModel::OnDemand,
        });
        sink.emit(&TraceEvent::BufferHit {
            i: 0,
            j: 0,
            bytes: 8,
        });
        sink.emit(&TraceEvent::PrefetchHit {
            i: 0,
            j: 1,
            bytes: 16,
        });
        sink.emit(&TraceEvent::PrefetchStall {
            i: 1,
            j: 1,
            wait_us: 25,
        });
        {
            let st = sink.state.lock().unwrap();
            assert_eq!(st.s_seq, Some(100));
            assert_eq!(st.buffer_hits, 1);
            assert_eq!(st.prefetch_hits, 1);
            assert_eq!(st.prefetch_misses, 1);
            assert_eq!(st.stall_us, 25);
        }
        sink.emit(&TraceEvent::IterationEnd {
            iteration: 1,
            model: AccessModel::OnDemand,
            frontier: 10,
            bytes_read: 123,
            scatter_us: 5,
            apply_us: 3,
            io_wait_us: 9,
        });
        let st = sink.state.lock().unwrap();
        assert_eq!(st.s_seq, None);
        assert_eq!(st.buffer_hits, 0);
        assert_eq!(st.prefetch_hits, 0);
        assert_eq!(st.prefetch_misses, 0);
        assert_eq!(st.stall_us, 0);
    }
}
