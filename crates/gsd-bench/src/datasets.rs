//! Stand-in datasets for the paper's Table 3.
//!
//! The real datasets are multi-billion-edge crawls (Twitter2010, SK2005,
//! UK2007, UKUnion, Kron30). The stand-ins reproduce the properties the
//! paper's mechanisms respond to — degree skew (frontier sizes), ID
//! locality (`S_seq`/`S_ran` and the `i < j` cross-iteration fraction) and
//! relative dataset sizes — at a scale that runs on one machine. See
//! DESIGN.md §3 for the substitution argument.

use gsd_graph::{GeneratorConfig, Graph, GraphKind};
use rand::SeedableRng;
use std::sync::OnceLock;

/// Workload scale, selected via the `GSD_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (~1k vertices).
    Tiny,
    /// Default bench scale (~10-60k vertices).
    Small,
    /// Full reproduction scale (~100-600k vertices).
    Medium,
}

impl Scale {
    /// Reads `GSD_SCALE` (`tiny` / `small` / `medium`), defaulting to
    /// `Small`.
    pub fn from_env() -> Scale {
        match std::env::var("GSD_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        }
    }

    /// Base vertex count (the Twitter2010 stand-in's `|V|`).
    fn base_vertices(self) -> u32 {
        match self {
            Scale::Tiny => 1_000,
            Scale::Small => 10_000,
            Scale::Medium => 100_000,
        }
    }
}

/// One stand-in dataset with lazily generated variants.
pub struct Dataset {
    /// Stand-in name (e.g. `twitter_sim`).
    pub name: &'static str,
    /// The paper dataset it substitutes.
    pub paper_name: &'static str,
    /// Dataset type as in Table 3.
    pub kind_desc: &'static str,
    /// Generator family.
    pub kind: GraphKind,
    /// Vertex count at the chosen scale.
    pub vertices: u32,
    /// Edge count at the chosen scale.
    pub edges: u64,
    seed: u64,
    directed: OnceLock<Graph>,
    weighted: OnceLock<Graph>,
    symmetric: OnceLock<Graph>,
}

impl Dataset {
    fn new(
        name: &'static str,
        paper_name: &'static str,
        kind_desc: &'static str,
        kind: GraphKind,
        vertices: u32,
        edges: u64,
        seed: u64,
    ) -> Self {
        Dataset {
            name,
            paper_name,
            kind_desc,
            kind,
            vertices,
            edges,
            seed,
            directed: OnceLock::new(),
            weighted: OnceLock::new(),
            symmetric: OnceLock::new(),
        }
    }

    /// The directed, unweighted graph (PR / PR-D / BFS workloads).
    pub fn directed(&self) -> &Graph {
        self.directed.get_or_init(|| {
            GeneratorConfig::new(self.kind, self.vertices, self.edges, self.seed).generate()
        })
    }

    /// The directed graph with random positive weights (SSSP workload).
    pub fn weighted(&self) -> &Graph {
        self.weighted.get_or_init(|| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.seed ^ 0x5EED);
            gsd_graph::generators::randomize_weights(self.directed().clone(), &mut rng)
        })
    }

    /// The symmetrized graph (CC workload — label propagation computes
    /// undirected components).
    pub fn symmetric(&self) -> &Graph {
        self.symmetric.get_or_init(|| self.directed().symmetrized())
    }

    /// A deterministic well-connected SSSP/BFS root: the vertex with the
    /// highest out-degree.
    pub fn root(&self) -> u32 {
        let deg = self.directed().out_degrees();
        deg.iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .map(|(v, _)| v as u32)
            .unwrap_or(0)
    }
}

/// The five stand-ins of Table 3, at one scale.
pub struct Datasets {
    /// The chosen scale.
    pub scale: Scale,
    datasets: Vec<Dataset>,
}

impl Datasets {
    /// Builds the registry at `scale`. Graph generation is lazy.
    pub fn load(scale: Scale) -> Self {
        let v = scale.base_vertices() as u64;
        // Relative sizes follow Table 3 (Twitter2010 = 1.0×: 42M vertices,
        // 1.5B edges ≈ 36 edges/vertex). Kron30's 21× footprint is capped
        // at 6× to stay laptop-sized (documented in DESIGN.md).
        let datasets = vec![
            Dataset::new(
                "twitter_sim",
                "Twitter2010",
                "Social network",
                GraphKind::RMat,
                v as u32,
                v * 36,
                101,
            ),
            Dataset::new(
                "sk_sim",
                "SK2005",
                "Social network",
                GraphKind::RMat,
                (v + v / 5) as u32,
                v * 45,
                202,
            ),
            Dataset::new(
                "uk_sim",
                "UK2007",
                "Web graph",
                GraphKind::WebLocality,
                (v * 5 / 2) as u32,
                v * 88,
                303,
            ),
            Dataset::new(
                "ukunion_sim",
                "UKUnion",
                "Web graph",
                GraphKind::WebLocality,
                (v * 3) as u32,
                v * 130,
                404,
            ),
            Dataset::new(
                "kron_sim",
                "Kron30",
                "Synthetic graph",
                GraphKind::Kronecker,
                (v * 6) as u32,
                v * 190,
                505,
            ),
        ];
        Datasets { scale, datasets }
    }

    /// All datasets.
    pub fn all(&self) -> &[Dataset] {
        &self.datasets
    }

    /// Looks a dataset up by stand-in name.
    pub fn get(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_five_standins() {
        let ds = Datasets::load(Scale::Tiny);
        let names: Vec<_> = ds.all().iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["twitter_sim", "sk_sim", "uk_sim", "ukunion_sim", "kron_sim"]
        );
        assert!(ds.get("uk_sim").is_some());
        assert!(ds.get("nope").is_none());
    }

    #[test]
    fn sizes_scale_and_preserve_relative_order() {
        let tiny = Datasets::load(Scale::Tiny);
        let small = Datasets::load(Scale::Small);
        for (a, b) in tiny.all().iter().zip(small.all()) {
            assert_eq!(b.edges / a.edges, 10, "{}", a.name);
        }
        // Table 3 ordering by edge count: twitter < sk < uk < ukunion < kron.
        let e: Vec<u64> = tiny.all().iter().map(|d| d.edges).collect();
        assert!(e.windows(2).all(|w| w[0] < w[1]), "{e:?}");
    }

    #[test]
    fn variants_are_consistent() {
        let ds = Datasets::load(Scale::Tiny);
        let d = ds.get("twitter_sim").unwrap();
        assert_eq!(d.directed().num_edges(), d.edges);
        assert!(d.weighted().is_weighted());
        assert_eq!(d.weighted().num_edges(), d.edges);
        assert!(
            d.symmetric().num_edges() >= d.edges,
            "symmetrization adds reverses"
        );
        assert!(d.root() < d.vertices);
        // Root really is a hub.
        let deg = d.directed().out_degrees();
        assert_eq!(deg[d.root() as usize], *deg.iter().max().unwrap());
    }

    #[test]
    fn generation_is_lazy_and_cached() {
        let ds = Datasets::load(Scale::Tiny);
        let d = ds.get("kron_sim").unwrap();
        let a = d.directed() as *const Graph;
        let b = d.directed() as *const Graph;
        assert_eq!(a, b, "same cached instance");
    }
}
