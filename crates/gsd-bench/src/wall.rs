//! Wall-time benchmark harness: the `BENCH_*.json` trajectory.
//!
//! Unlike [`crate::runner`], which prices runs on the simulated disk's
//! virtual clock, this module measures **wall time** on real files
//! ([`gsd_io::FileStorage`] in a self-deleting temp directory) with the
//! usual benchmarking discipline:
//!
//! * each `(system, algorithm, dataset)` cell preprocesses its on-disk
//!   format **once**, then rebuilds the engine from the files for every
//!   repeat (state from a previous repeat never leaks);
//! * `warmup` untimed repeats warm the page cache and allocator before
//!   `repeats` timed ones;
//! * the reported breakdown comes from the **median** repeat (upper
//!   median for even counts), so one descheduled run cannot skew it.
//!
//! Every timed repeat emits a [`TraceEvent::BenchRepeat`] into the
//! process-wide sink, so a `--trace` of a bench run records the raw
//! trajectory next to the per-iteration events. The deterministic
//! counters of the resulting [`BenchReport`] (iterations, bytes moved,
//! prefetch totals) gate CI via
//! [`gsd_metrics::BenchReport::compare_deterministic`]; wall times and
//! RSS are informational.

use crate::datasets::{Dataset, Datasets, Scale};
use crate::runner::{paper_budget, paper_p, prepare_format, reopen_engine, Algo, SystemKind};
use gsd_core::PipelineConfig;
use gsd_io::{FileStorage, SharedStorage, TempDir};
use gsd_metrics::{median, BenchEntry, BenchReport, BENCH_SCHEMA_VERSION};
use gsd_runtime::RunStats;
use gsd_trace::{Stopwatch, TraceEvent};
use std::sync::Arc;

/// Wall-time harness configuration.
#[derive(Debug, Clone)]
pub struct WallOptions {
    /// Report label — the `<label>` in `BENCH_<label>.json`.
    pub label: String,
    /// Untimed warmup repeats per cell.
    pub warmup: u32,
    /// Timed repeats per cell (the median one is reported).
    pub repeats: u32,
    /// Whether the prefetch pipeline is enabled (GraphSD and Lumos).
    pub prefetch: bool,
    /// Dataset scale.
    pub scale: Scale,
    /// Systems to measure.
    pub systems: Vec<SystemKind>,
    /// Algorithms to measure.
    pub algos: Vec<Algo>,
    /// Dataset names to measure; empty means all five stand-ins.
    pub datasets: Vec<String>,
}

impl Default for WallOptions {
    fn default() -> Self {
        WallOptions {
            label: "local".to_string(),
            warmup: 1,
            repeats: 3,
            prefetch: true,
            scale: Scale::Tiny,
            systems: vec![
                SystemKind::GraphSd,
                SystemKind::HusGraph,
                SystemKind::Lumos,
                SystemKind::GridStream,
            ],
            algos: Algo::all().to_vec(),
            datasets: Vec::new(),
        }
    }
}

/// Scale name as recorded in the report (`"tiny"`, `"small"`,
/// `"medium"`).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

/// Runs the whole matrix of `opts` and assembles the report.
pub fn run_wall(opts: &WallOptions) -> std::io::Result<BenchReport> {
    let repeats = opts.repeats.max(1);
    let datasets = Datasets::load(opts.scale);
    let mut entries = Vec::new();
    for ds in datasets.all() {
        if !opts.datasets.is_empty() && !opts.datasets.iter().any(|n| n == ds.name) {
            continue;
        }
        for &kind in &opts.systems {
            for &algo in &opts.algos {
                entries.push(bench_cell(
                    kind,
                    ds,
                    algo,
                    opts.warmup,
                    repeats,
                    opts.prefetch,
                )?);
            }
        }
    }
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: opts.label.clone(),
        scale: scale_name(opts.scale).to_string(),
        warmup: opts.warmup,
        repeats,
        prefetch: opts.prefetch,
        entries,
    })
}

/// Measures one `(system, dataset, algorithm)` cell.
fn bench_cell(
    kind: SystemKind,
    dataset: &Dataset,
    algo: Algo,
    warmup: u32,
    repeats: u32,
    prefetch: bool,
) -> std::io::Result<BenchEntry> {
    let graph = algo.input(dataset);
    let root = dataset.root();
    let dir = TempDir::new("gsd-wallbench")?;
    let storage: SharedStorage = Arc::new(FileStorage::open(dir.path())?);
    prepare_format(kind, graph, &storage, paper_p(graph))?;
    drop(storage);

    let budget = paper_budget(graph);
    let prefetch_cfg = prefetch.then(|| PipelineConfig::with_depth(2));
    let sink = crate::trace::current_sink();

    let run_once = || -> std::io::Result<(u64, RunStats)> {
        let storage: SharedStorage = Arc::new(FileStorage::open(dir.path())?);
        let mut engine = reopen_engine(kind, storage, budget, prefetch_cfg)?;
        engine.set_trace(sink.clone());
        let watch = Stopwatch::start();
        let (stats, _) = engine.run_algo(algo, root)?;
        Ok((watch.elapsed().as_micros() as u64, stats))
    };

    for _ in 0..warmup {
        run_once()?;
    }

    let mut samples: Vec<(u64, RunStats)> = Vec::with_capacity(repeats as usize);
    for repeat in 0..repeats {
        let (wall_us, stats) = run_once()?;
        if sink.enabled() {
            sink.emit(&TraceEvent::BenchRepeat {
                system: kind.label(),
                algorithm: algo.label().to_string(),
                repeat,
                wall_us,
            });
        }
        samples.push((wall_us, stats));
    }

    // The engines are deterministic: any drift in the replayed-work
    // counters between repeats is a correctness bug, not noise.
    for (wall, stats) in &samples[1..] {
        let (_, first) = &samples[0];
        if stats.iterations != first.iterations
            || stats.io.read_bytes() != first.io.read_bytes()
            || stats.io.write_bytes != first.io.write_bytes
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}/{}/{}: repeats disagree on deterministic counters \
                     (iterations {} vs {}, read {} vs {}, written {} vs {}; wall {wall}us)",
                    kind.label(),
                    algo.label(),
                    dataset.name,
                    stats.iterations,
                    first.iterations,
                    stats.io.read_bytes(),
                    first.io.read_bytes(),
                    stats.io.write_bytes,
                    first.io.write_bytes,
                ),
            ));
        }
    }

    let walls: Vec<u64> = samples.iter().map(|(w, _)| *w).collect();
    let wall_us_median = median(&walls);
    let (_, stats) = samples
        .iter()
        .find(|(w, _)| *w == wall_us_median)
        .unwrap_or(&samples[0]);

    let io_wait_us: u64 = stats
        .per_iteration
        .iter()
        .map(|it| it.io_wait_time.as_micros() as u64)
        .sum();
    let prefetch_total = stats.prefetch_hits + stats.prefetch_misses;
    Ok(BenchEntry {
        system: kind.label().to_string(),
        algorithm: algo.label().to_string(),
        dataset: dataset.name.to_string(),
        iterations: stats.iterations,
        wall_us: walls,
        wall_us_median,
        io_wait_us,
        compute_us: stats.compute_time.as_micros() as u64,
        stall_us: stats.prefetch_stall_time.as_micros() as u64,
        scheduler_us: stats.scheduler_time.as_micros() as u64,
        bytes_read: stats.io.read_bytes(),
        bytes_written: stats.io.write_bytes,
        prefetch_hits: stats.prefetch_hits,
        prefetch_misses: stats.prefetch_misses,
        prefetch_hit_rate: if prefetch_total == 0 {
            0.0
        } else {
            stats.prefetch_hits as f64 / prefetch_total as f64
        },
        peak_rss_bytes: gsd_metrics::rss::peak_rss_bytes().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> WallOptions {
        WallOptions {
            label: "unit".to_string(),
            warmup: 0,
            repeats: 2,
            scale: Scale::Tiny,
            systems: vec![SystemKind::GraphSd],
            algos: vec![Algo::Pr],
            datasets: vec!["twitter_sim".to_string()],
            ..WallOptions::default()
        }
    }

    #[test]
    fn wall_report_is_schema_valid_and_self_consistent() {
        let report = run_wall(&tiny_opts()).unwrap();
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.system, "GraphSD");
        assert_eq!(e.algorithm, "PR");
        assert_eq!(e.dataset, "twitter_sim");
        assert_eq!(e.iterations, 5, "paper PageRank runs 5 iterations");
        assert_eq!(e.wall_us.len(), 2);
        assert!(e.bytes_read > 0, "an out-of-core run must read bytes");
        // Round-trip through the schema validator.
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(report.file_name(), "BENCH_unit.json");
    }

    #[test]
    fn deterministic_counters_stable_across_harness_invocations() {
        let a = run_wall(&tiny_opts()).unwrap();
        let b = run_wall(&tiny_opts()).unwrap();
        assert_eq!(b.compare_deterministic(&a), Ok(1));
    }

    #[test]
    fn prefetch_off_reports_zero_pipeline_activity() {
        let opts = WallOptions {
            prefetch: false,
            repeats: 1,
            ..tiny_opts()
        };
        let report = run_wall(&opts).unwrap();
        let e = &report.entries[0];
        assert_eq!(e.prefetch_hits + e.prefetch_misses, 0);
        assert_eq!(e.prefetch_hit_rate, 0.0);
        assert_eq!(e.stall_us, 0);
    }

    #[test]
    fn all_four_engines_produce_entries_on_one_cell() {
        let opts = WallOptions {
            repeats: 1,
            systems: vec![
                SystemKind::GraphSd,
                SystemKind::HusGraph,
                SystemKind::Lumos,
                SystemKind::GridStream,
            ],
            ..tiny_opts()
        };
        let report = run_wall(&opts).unwrap();
        let systems: Vec<&str> = report.entries.iter().map(|e| e.system.as_str()).collect();
        assert_eq!(systems, vec!["GraphSD", "HUS-Graph", "Lumos", "GridGraph"]);
        for e in &report.entries {
            assert_eq!(e.iterations, 5, "{}", e.system);
            assert!(e.bytes_read > 0, "{}", e.system);
        }
    }
}
