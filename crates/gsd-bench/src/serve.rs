//! Serve-mode benchmark: queries/sec and cache behavior of the daemon.
//!
//! Where [`crate::wall`] times whole analytic runs, this mode times the
//! `gsd serve` query path: a fixed, deterministic workload of point
//! lookups and batched traversals driven straight into an in-process
//! [`ServeCore`] (no threads, no sockets — the executor the daemon wraps
//! is single-threaded, so this measures exactly what the daemon's hot
//! loop does, minus nondeterministic batching-window timing).
//!
//! Each repeat rebuilds the core from the on-disk grid with a cold
//! cache, so the cache hits the workload earns are part of the measured
//! behavior, not leftover state. The deterministic counters land in the
//! usual [`BenchEntry`] slots — query count as `iterations`, cache
//! hits/misses in the prefetch fields — so existing baselines parse and
//! [`gsd_metrics::BenchReport::compare_deterministic`] gates them in CI
//! without a schema change. Wall times (and the queries/sec derived from
//! them) stay informational, as everywhere else in the harness.

use crate::datasets::Datasets;
use crate::wall::{scale_name, WallOptions};
use gsd_core::GridSession;
use gsd_graph::{CorruptionResponse, VerifyPolicy};
use gsd_io::{FileStorage, SharedStorage, TempDir};
use gsd_metrics::{median, BenchEntry, BenchReport, BENCH_SCHEMA_VERSION};
use gsd_serve::{Request, Response, ServeCore, ServeCounters, Traversal};
use gsd_trace::Stopwatch;
use std::io::{Error, ErrorKind, Result};
use std::sync::Arc;

/// Cache capacity for the benchmark daemon — big enough that a tiny
/// grid's hot blocks stay resident, small enough that eviction runs.
const CACHE_BYTES: u64 = 8 << 20;

/// Runs the serve workload over every selected dataset.
///
/// Reuses [`WallOptions`] for label/warmup/repeats/scale/datasets; the
/// `systems`, `algos` and `prefetch` fields are ignored (there is one
/// system under test and the cache replaces the prefetch pipeline).
pub fn run_serve(opts: &WallOptions) -> Result<BenchReport> {
    let repeats = opts.repeats.max(1);
    let datasets = Datasets::load(opts.scale);
    let mut entries = Vec::new();
    for ds in datasets.all() {
        if !opts.datasets.is_empty() && !opts.datasets.iter().any(|n| n == ds.name) {
            continue;
        }
        entries.push(bench_dataset(ds, opts.warmup, repeats)?);
    }
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: opts.label.clone(),
        scale: scale_name(opts.scale).to_string(),
        warmup: opts.warmup,
        repeats,
        prefetch: false,
        entries,
    })
}

/// Queries/sec of `entry`, derived from its median wall time.
pub fn queries_per_second(entry: &BenchEntry) -> f64 {
    if entry.wall_us_median == 0 {
        return 0.0;
    }
    entry.iterations as f64 * 1e6 / entry.wall_us_median as f64
}

fn bench_dataset(ds: &crate::datasets::Dataset, warmup: u32, repeats: u32) -> Result<BenchEntry> {
    let graph = ds.directed();
    let dir = TempDir::new("gsd-servebench")?;
    {
        let storage: SharedStorage = Arc::new(FileStorage::open(dir.path())?);
        crate::runner::prepare_format(
            crate::runner::SystemKind::GraphSd,
            graph,
            &storage,
            crate::runner::paper_p(graph),
        )?;
    }

    let n = graph.num_vertices();
    let root = ds.root();
    let run_once = || -> Result<(u64, ServeCounters)> {
        let storage: SharedStorage = Arc::new(FileStorage::open(dir.path())?);
        let session = GridSession::open(storage, VerifyPolicy::Off, CorruptionResponse::default())?;
        let mut core = ServeCore::new(session, CACHE_BYTES, gsd_trace::null_sink())?;
        let watch = Stopwatch::start();
        workload(&mut core, n, root)?;
        Ok((watch.elapsed().as_micros() as u64, core.counters()))
    };

    for _ in 0..warmup {
        run_once()?;
    }
    let mut samples: Vec<(u64, ServeCounters)> = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        samples.push(run_once()?);
    }

    // Every repeat replays the same single-threaded script against a
    // cold core: any counter drift is a determinism bug.
    let (_, first) = samples[0];
    for (wall, c) in &samples[1..] {
        if *c != first {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "serve/{}: repeats disagree on deterministic counters \
                     ({c:?} vs {first:?}; wall {wall}us)",
                    ds.name
                ),
            ));
        }
    }

    let walls: Vec<u64> = samples.iter().map(|(w, _)| *w).collect();
    let wall_us_median = median(&walls);
    let lookups = first.cache_hits + first.cache_misses;
    Ok(BenchEntry {
        system: "gsd-serve".to_string(),
        algorithm: "mixed".to_string(),
        dataset: ds.name.to_string(),
        iterations: first.queries as u32,
        wall_us: walls,
        wall_us_median,
        io_wait_us: 0,
        compute_us: 0,
        stall_us: 0,
        scheduler_us: 0,
        bytes_read: first.bytes_read,
        bytes_written: 0,
        prefetch_hits: first.cache_hits,
        prefetch_misses: first.cache_misses,
        prefetch_hit_rate: if lookups == 0 {
            0.0
        } else {
            first.cache_hits as f64 / lookups as f64
        },
        peak_rss_bytes: gsd_metrics::rss::peak_rss_bytes().unwrap_or(0),
    })
}

/// The fixed query script: point lookups spread over the ID space, two
/// batches of concurrent traversals (cold then warm cache), and a PPR
/// batch in between. Mirrors the mix a multi-tenant daemon sees, with
/// every parameter derived from `(n, root)` so repeats are replays.
fn workload(core: &mut ServeCore, n: u32, root: u32) -> Result<()> {
    let step = (n / 8).max(1);
    for k in 0..8u32 {
        let v = (k * step) % n;
        check(core.execute(&Request::Degree { v }))?;
        check(core.execute(&Request::Neighbors { v }))?;
    }

    let khops = [
        Traversal::KHop { source: root, k: 2 },
        Traversal::KHop {
            source: (root + n / 3) % n,
            k: 2,
        },
        Traversal::KHop {
            source: (root + 2 * n / 3) % n,
            k: 3,
        },
    ];
    for r in core.execute_batch(&khops) {
        check(r)?;
    }

    let mut seeds = vec![root, (root + n / 2) % n];
    seeds.sort_unstable();
    seeds.dedup();
    let pprs = [
        Traversal::Ppr {
            seeds: vec![root],
            alpha: 0.85,
            iterations: 3,
        },
        Traversal::Ppr {
            seeds,
            alpha: 0.85,
            iterations: 3,
        },
    ];
    for r in core.execute_batch(&pprs) {
        check(r)?;
    }

    // Same k-hop batch again: this round runs against the cache the
    // first round populated and earns the entry's hits.
    for r in core.execute_batch(&khops) {
        check(r)?;
    }
    check(core.execute(&Request::Stats))?;
    Ok(())
}

fn check(response: Response) -> Result<Response> {
    match response {
        Response::Error { message } => Err(Error::new(ErrorKind::InvalidData, message)),
        ok => Ok(ok),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Scale;
    use gsd_metrics::BenchReport;

    fn tiny_opts() -> WallOptions {
        WallOptions {
            label: "serve-unit".to_string(),
            warmup: 0,
            repeats: 2,
            scale: Scale::Tiny,
            datasets: vec!["twitter_sim".to_string()],
            ..WallOptions::default()
        }
    }

    #[test]
    fn serve_report_is_schema_valid_with_cache_hits() {
        let report = run_serve(&tiny_opts()).unwrap();
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.system, "gsd-serve");
        assert_eq!(
            e.iterations, 25,
            "16 lookups + 3 khop + 2 ppr + 3 khop + stats"
        );
        assert!(e.bytes_read > 0, "traversals must touch disk");
        assert!(
            e.prefetch_hits > 0,
            "the warm k-hop round must hit the cache"
        );
        assert!(e.prefetch_hit_rate > 0.0 && e.prefetch_hit_rate <= 1.0);
        assert!(queries_per_second(e) >= 0.0);
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn serve_counters_are_stable_across_harness_invocations() {
        let a = run_serve(&tiny_opts()).unwrap();
        let b = run_serve(&tiny_opts()).unwrap();
        assert_eq!(b.compare_deterministic(&a), Ok(1));
    }
}
