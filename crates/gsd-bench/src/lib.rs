//! # gsd-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) on
//! the scaled-down stand-in datasets, across the GraphSD engine, its §5.4
//! ablations, and the HUS-Graph-like / Lumos-like baselines:
//!
//! | id | paper item | harness |
//! |----|------------|---------|
//! | `table1` | optimization matrix | [`experiments::table1`] |
//! | `table3` | dataset inventory | [`experiments::table3`] |
//! | `table4` | GraphSD absolute execution times | [`experiments::table4`] |
//! | `fig5` | normalized time vs HUS-Graph / Lumos | [`experiments::fig5`] |
//! | `fig6` | runtime breakdown (I/O vs compute) | [`experiments::fig6`] |
//! | `fig7` | I/O traffic comparison | [`experiments::fig7`] |
//! | `fig8` | preprocessing time comparison | [`experiments::fig8`] |
//! | `fig9` | update-strategy ablation (b1/b2) | [`experiments::fig9`] |
//! | `fig10` | per-iteration scheduling (b3/b4) | [`experiments::fig10`] |
//! | `fig11` | scheduler overhead vs saved I/O | [`experiments::fig11`] |
//! | `fig12` | buffering effect | [`experiments::fig12`] |
//!
//! Run everything with `cargo bench -p gsd-bench --bench paper_experiments`
//! or a single item with `cargo run --release -p gsd-bench --bin
//! experiments -- <id>`. The `GSD_SCALE` environment variable selects the
//! workload scale (`tiny`, `small` — default, `medium`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod delta;
pub mod experiments;
pub mod runner;
pub mod serve;
pub mod table;
pub mod trace;
pub mod wall;

pub use datasets::{Dataset, Datasets, Scale};
pub use delta::run_delta;
pub use runner::{Algo, RunOutcome, SystemKind};
pub use serve::{queries_per_second, run_serve};
pub use trace::{current_sink, install_trace_sink, VerboseSink};
pub use wall::{run_wall, WallOptions};
