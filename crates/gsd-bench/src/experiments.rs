//! One harness per table/figure of the paper's evaluation section.
//!
//! Every experiment returns a structured result (consumed by the shape
//! tests in `tests/experiment_shapes.rs`) whose `Display` renders the rows
//! the paper reports. Absolute numbers differ from the paper — the
//! substrate is a simulated HDD and the datasets are scaled stand-ins —
//! but each experiment's header states the paper's claim so the shape can
//! be compared at a glance.

use crate::datasets::{Dataset, Datasets};
use crate::runner::{run_system, Algo, SystemKind};
use crate::table::{mib, ratio, secs, Table};
use std::fmt;
use std::time::Duration;

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: optimization support matrix of the implemented engines.
pub struct Table1 {
    /// (system, eliminates-random, avoids-inactive, future-value).
    pub rows: Vec<(&'static str, bool, bool, bool)>,
}

/// Runs the `table1` experiment (reads each engine's capability flags).
pub fn table1(ds: &Datasets) -> Table1 {
    use gsd_runtime::Engine;
    // Capabilities are static per engine; build each once on a trivial
    // dataset to ask it.
    let d = &ds.all()[0];
    let g = d.directed();
    let storage: gsd_io::SharedStorage =
        std::sync::Arc::new(gsd_io::SimDisk::new(gsd_io::DiskModel::hdd()));
    gsd_graph::preprocess(
        g,
        storage.as_ref(),
        &gsd_graph::PreprocessConfig::graphsd("").with_intervals(4),
    )
    .unwrap();
    let grid = gsd_graph::GridGraph::open(storage.clone()).unwrap();
    let (hus, _) = gsd_baselines::build_hus_format(g, &storage, "hus/", Some(4)).unwrap();
    let (lumos_grid, _) =
        gsd_baselines::build_lumos_format(g, &storage, "lumos/", Some(4)).unwrap();

    let engines: Vec<(&'static str, gsd_runtime::Capabilities)> = vec![
        (
            "GridGraph (ours)",
            gsd_baselines::GridStreamEngine::new(grid.clone())
                .unwrap()
                .capabilities(),
        ),
        (
            "HUS-Graph (ours)",
            gsd_baselines::HusGraphEngine::new(hus)
                .unwrap()
                .capabilities(),
        ),
        (
            "Lumos (ours)",
            gsd_baselines::LumosEngine::new(lumos_grid)
                .unwrap()
                .capabilities(),
        ),
        (
            "GraphSD",
            gsd_core::GraphSdEngine::new(grid, gsd_core::GraphSdConfig::full())
                .unwrap()
                .capabilities(),
        ),
    ];
    Table1 {
        rows: engines
            .into_iter()
            .map(|(name, c)| {
                (
                    name,
                    c.eliminates_random_accesses,
                    c.avoids_inactive_data,
                    c.future_value_computation,
                )
            })
            .collect(),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table 1: optimizations per system (✓/✗) ==")?;
        writeln!(
            f,
            "paper: only GraphSD has all three (avoiding inactive data AND future-value computation)\n"
        )?;
        let mut t = Table::new(vec![
            "System",
            "EliminatesRandomAccesses",
            "AvoidsInactiveData",
            "FutureValueComputation",
        ]);
        let mark = |b: bool| if b { "yes" } else { "no" };
        for &(name, a, b, c) in &self.rows {
            t.push(vec![name, mark(a), mark(b), mark(c)]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Table 3: the dataset inventory (stand-ins).
pub struct Table3 {
    /// (stand-in, paper name, |V|, |E|, type).
    pub rows: Vec<(String, String, u32, u64, String)>,
}

/// Runs the `table3` experiment.
pub fn table3(ds: &Datasets) -> Table3 {
    Table3 {
        rows: ds
            .all()
            .iter()
            .map(|d| {
                (
                    d.name.to_owned(),
                    d.paper_name.to_owned(),
                    d.vertices,
                    d.edges,
                    d.kind_desc.to_owned(),
                )
            })
            .collect(),
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table 3: datasets (scaled stand-ins) ==\n")?;
        let mut t = Table::new(vec![
            "Dataset",
            "Stands in for",
            "Vertices",
            "Edges",
            "Type",
        ]);
        for (name, paper, v, e, kind) in &self.rows {
            t.push(vec![
                name.clone(),
                paper.clone(),
                v.to_string(),
                e.to_string(),
                kind.clone(),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Table 4 — GraphSD absolute execution time
// ---------------------------------------------------------------------------

/// Table 4: GraphSD execution time per dataset × algorithm.
pub struct Table4 {
    /// (dataset, PR, PR-D, CC, SSSP) execution times.
    pub rows: Vec<(String, [Duration; 4])>,
}

/// Runs the `table4` experiment.
pub fn table4(ds: &Datasets) -> std::io::Result<Table4> {
    let mut rows = Vec::new();
    for d in ds.all() {
        let mut times = [Duration::ZERO; 4];
        for (k, algo) in Algo::all().into_iter().enumerate() {
            times[k] = run_system(SystemKind::GraphSd, d, algo)?.execution_time();
        }
        rows.push((d.name.to_owned(), times));
    }
    Ok(Table4 { rows })
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Table 4: GraphSD execution time (seconds, modeled) =="
        )?;
        writeln!(
            f,
            "paper shape: SSSP slowest, PR/PR-D cheapest; time grows with dataset size\n"
        )?;
        let mut t = Table::new(vec!["Dataset", "PR", "PR-D", "CC", "SSSP"]);
        for (name, times) in &self.rows {
            t.push(vec![
                name.clone(),
                secs(times[0]),
                secs(times[1]),
                secs(times[2]),
                secs(times[3]),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Figure 5 — overall execution time vs HUS-Graph and Lumos
// ---------------------------------------------------------------------------

/// One Figure 5 cell: the three systems on one dataset × algorithm.
pub struct Fig5Row {
    /// Dataset stand-in name.
    pub dataset: String,
    /// Algorithm label.
    pub algo: &'static str,
    /// Execution times: GraphSD, HUS-Graph, Lumos.
    pub times: [Duration; 3],
}

impl Fig5Row {
    /// HUS-Graph time / GraphSD time.
    pub fn speedup_vs_hus(&self) -> f64 {
        self.times[1].as_secs_f64() / self.times[0].as_secs_f64().max(1e-12)
    }

    /// Lumos time / GraphSD time.
    pub fn speedup_vs_lumos(&self) -> f64 {
        self.times[2].as_secs_f64() / self.times[0].as_secs_f64().max(1e-12)
    }
}

/// Figure 5 result.
pub struct Fig5 {
    /// All dataset × algorithm cells.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// Geometric-mean speedups (vs HUS-Graph, vs Lumos).
    pub fn mean_speedups(&self) -> (f64, f64) {
        (
            geomean(self.rows.iter().map(|r| r.speedup_vs_hus())),
            geomean(self.rows.iter().map(|r| r.speedup_vs_lumos())),
        )
    }

    /// Max speedups (vs HUS-Graph, vs Lumos).
    pub fn max_speedups(&self) -> (f64, f64) {
        (
            self.rows
                .iter()
                .map(|r| r.speedup_vs_hus())
                .fold(0.0, f64::max),
            self.rows
                .iter()
                .map(|r| r.speedup_vs_lumos())
                .fold(0.0, f64::max),
        )
    }
}

/// Runs the `fig5` experiment over `datasets` (pass `ds.all()` for the
/// full figure).
pub fn fig5(datasets: &[Dataset]) -> std::io::Result<Fig5> {
    let mut rows = Vec::new();
    for d in datasets {
        for algo in Algo::all() {
            let mut times = [Duration::ZERO; 3];
            for (k, kind) in SystemKind::main_three().into_iter().enumerate() {
                times[k] = run_system(kind, d, algo)?.execution_time();
            }
            rows.push(Fig5Row {
                dataset: d.name.to_owned(),
                algo: algo.label(),
                times,
            });
        }
    }
    Ok(Fig5 { rows })
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 5: overall execution time, normalized to GraphSD = 1.00 =="
        )?;
        writeln!(
            f,
            "paper: GraphSD wins everywhere; avg 1.7x vs HUS-Graph / 2.7x vs Lumos (up to 2.7x / 3.9x)\n"
        )?;
        let mut t = Table::new(vec!["Dataset", "Algo", "GraphSD(s)", "HUS-Graph", "Lumos"]);
        for r in &self.rows {
            t.push(vec![
                r.dataset.clone(),
                r.algo.to_owned(),
                secs(r.times[0]),
                format!("{:.2}", r.speedup_vs_hus()),
                format!("{:.2}", r.speedup_vs_lumos()),
            ]);
        }
        write!(f, "{t}")?;
        let (gh, gl) = self.mean_speedups();
        let (mh, ml) = self.max_speedups();
        writeln!(
            f,
            "\ngeomean speedup: {gh:.2}x vs HUS-Graph, {gl:.2}x vs Lumos (max {mh:.2}x / {ml:.2}x)"
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — runtime breakdown
// ---------------------------------------------------------------------------

/// One Figure 6 bar: a system's runtime split on one algorithm.
pub struct Fig6Row {
    /// Algorithm label.
    pub algo: &'static str,
    /// System label.
    pub system: &'static str,
    /// Disk I/O time.
    pub io_time: Duration,
    /// Vertex update (compute) time.
    pub compute_time: Duration,
    /// I/O share of execution time.
    pub io_fraction: f64,
    /// Prefetch-pipeline hits (scheduled reads served ahead of the ask).
    pub prefetch_hits: u64,
    /// Prefetch-pipeline misses (stalls + synchronous fallbacks).
    pub prefetch_misses: u64,
    /// Wall time the engine blocked on scheduled reads.
    pub prefetch_stall_time: Duration,
}

/// Figure 6 result (on the Twitter2010 stand-in).
pub struct Fig6 {
    /// All bars.
    pub rows: Vec<Fig6Row>,
}

/// Runs the `fig6` experiment.
pub fn fig6(d: &Dataset) -> std::io::Result<Fig6> {
    let mut rows = Vec::new();
    for algo in Algo::all() {
        for kind in SystemKind::main_three() {
            let outcome = run_system(kind, d, algo)?;
            rows.push(Fig6Row {
                algo: algo.label(),
                system: kind.label(),
                io_time: outcome.stats.io_time,
                compute_time: outcome.stats.compute_time,
                io_fraction: outcome.stats.io_fraction(),
                prefetch_hits: outcome.stats.prefetch_hits,
                prefetch_misses: outcome.stats.prefetch_misses,
                prefetch_stall_time: outcome.stats.prefetch_stall_time,
            });
        }
    }
    Ok(Fig6 { rows })
}

impl Fig6 {
    /// Total I/O time of `system` across the four algorithms.
    pub fn total_io(&self, system: &str) -> Duration {
        self.rows
            .iter()
            .filter(|r| r.system == system)
            .map(|r| r.io_time)
            .sum()
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 6: runtime breakdown on twitter_sim ==")?;
        writeln!(
            f,
            "paper: I/O dominates (56-91%); GraphSD's I/O time is 73% of HUS-Graph's and 49% of Lumos's\n"
        )?;
        let mut t = Table::new(vec![
            "Algo",
            "System",
            "IO(s)",
            "Update(s)",
            "IO-share",
            "pf-hit",
            "pf-miss",
            "stall(s)",
        ]);
        for r in &self.rows {
            t.push(vec![
                r.algo.to_owned(),
                r.system.to_owned(),
                secs(r.io_time),
                secs(r.compute_time),
                format!("{:.0}%", r.io_fraction * 100.0),
                r.prefetch_hits.to_string(),
                r.prefetch_misses.to_string(),
                secs(r.prefetch_stall_time),
            ]);
        }
        write!(f, "{t}")?;
        let gs = self.total_io("GraphSD").as_secs_f64();
        let hg = self.total_io("HUS-Graph").as_secs_f64();
        let lu = self.total_io("Lumos").as_secs_f64();
        writeln!(
            f,
            "\nGraphSD I/O time = {:.0}% of HUS-Graph, {:.0}% of Lumos",
            100.0 * gs / hg.max(1e-12),
            100.0 * gs / lu.max(1e-12)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — I/O traffic
// ---------------------------------------------------------------------------

/// One Figure 7 bar: a system's I/O traffic on one dataset × algorithm.
pub struct Fig7Row {
    /// Dataset stand-in name.
    pub dataset: String,
    /// Algorithm label.
    pub algo: &'static str,
    /// System label.
    pub system: &'static str,
    /// Total traffic (read + written bytes).
    pub traffic: u64,
}

/// Figure 7 result (twitter_sim and uk_sim in the paper).
pub struct Fig7 {
    /// All bars.
    pub rows: Vec<Fig7Row>,
}

/// Runs the `fig7` experiment.
pub fn fig7(datasets: &[&Dataset]) -> std::io::Result<Fig7> {
    let mut rows = Vec::new();
    for d in datasets {
        for algo in Algo::all() {
            for kind in SystemKind::main_three() {
                let outcome = run_system(kind, d, algo)?;
                rows.push(Fig7Row {
                    dataset: d.name.to_owned(),
                    algo: algo.label(),
                    system: kind.label(),
                    traffic: outcome.stats.io.total_traffic(),
                });
            }
        }
    }
    Ok(Fig7 { rows })
}

impl Fig7 {
    /// Total traffic of `system` across all cells.
    pub fn total(&self, system: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.system == system)
            .map(|r| r.traffic)
            .sum()
    }

    /// Traffic of `(dataset, algo, system)`.
    pub fn traffic_of(&self, dataset: &str, algo: &str, system: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.algo == algo && r.system == system)
            .map(|r| r.traffic)
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 7: I/O traffic (MiB) ==")?;
        writeln!(
            f,
            "paper: GraphSD moves 1.6x less than HUS-Graph and 5.5x less than Lumos;\n\
             HUS-Graph worst on PR (no cross-iteration), Lumos worst on the frontier algorithms\n"
        )?;
        let mut t = Table::new(vec!["Dataset", "Algo", "GraphSD", "HUS-Graph", "Lumos"]);
        let mut cells: std::collections::BTreeMap<(String, &str), [u64; 3]> = Default::default();
        for r in &self.rows {
            let slot = match r.system {
                "GraphSD" => 0,
                "HUS-Graph" => 1,
                _ => 2,
            };
            cells.entry((r.dataset.clone(), r.algo)).or_default()[slot] = r.traffic;
        }
        for ((dataset, algo), traffics) in &cells {
            t.push(vec![
                dataset.clone(),
                (*algo).to_owned(),
                mib(traffics[0]),
                mib(traffics[1]),
                mib(traffics[2]),
            ]);
        }
        write!(f, "{t}")?;
        let gs = self.total("GraphSD") as f64;
        writeln!(
            f,
            "\ntraffic vs GraphSD: HUS-Graph {}, Lumos {}",
            ratio(self.total("HUS-Graph") as f64, gs),
            ratio(self.total("Lumos") as f64, gs)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 8 — preprocessing time
// ---------------------------------------------------------------------------

/// One Figure 8 bar.
pub struct Fig8Row {
    /// Dataset stand-in name.
    pub dataset: String,
    /// System label.
    pub system: &'static str,
    /// Modeled preprocessing time.
    pub time: Duration,
    /// Bytes the format occupies on disk.
    pub bytes: u64,
}

/// Figure 8 result.
pub struct Fig8 {
    /// All bars.
    pub rows: Vec<Fig8Row>,
}

/// Runs the `fig8` experiment.
pub fn fig8(ds: &Datasets) -> std::io::Result<Fig8> {
    let mut rows = Vec::new();
    for d in ds.all() {
        for kind in SystemKind::main_three() {
            // Preprocessing is algorithm-independent; PR's input (the plain
            // directed graph) is the canonical one.
            let outcome = run_system(kind, d, Algo::Pr)?;
            rows.push(Fig8Row {
                dataset: d.name.to_owned(),
                system: kind.label(),
                time: outcome.preprocess.total_time(),
                bytes: outcome.preprocess.report.bytes_written,
            });
        }
    }
    Ok(Fig8 { rows })
}

impl Fig8 {
    /// Preprocessing time of `(dataset, system)`.
    pub fn time_of(&self, dataset: &str, system: &str) -> Option<Duration> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.system == system)
            .map(|r| r.time)
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 8: preprocessing time (seconds, modeled) ==")?;
        writeln!(
            f,
            "paper: HUS-Graph slowest (two sorted copies, ~1.4x GraphSD, ~1.8x Lumos); Lumos cheapest (one unsorted copy)\n"
        )?;
        let mut t = Table::new(vec!["Dataset", "System", "Time(s)", "Format(MiB)"]);
        for r in &self.rows {
            t.push(vec![
                r.dataset.clone(),
                r.system.to_owned(),
                secs(r.time),
                mib(r.bytes),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Figure 9 — update-strategy ablation
// ---------------------------------------------------------------------------

/// One Figure 9 bar.
pub struct Fig9Row {
    /// Algorithm label.
    pub algo: &'static str,
    /// System label (GraphSD / GraphSD-b1 / GraphSD-b2).
    pub system: &'static str,
    /// Execution time.
    pub time: Duration,
    /// I/O traffic.
    pub traffic: u64,
}

/// Figure 9 result (on the Twitter2010 stand-in).
pub struct Fig9 {
    /// All bars.
    pub rows: Vec<Fig9Row>,
}

/// Runs the `fig9` experiment.
pub fn fig9(d: &Dataset) -> std::io::Result<Fig9> {
    let mut rows = Vec::new();
    for algo in Algo::all() {
        for kind in [
            SystemKind::GraphSd,
            SystemKind::GraphSdB1,
            SystemKind::GraphSdB2,
        ] {
            let outcome = run_system(kind, d, algo)?;
            rows.push(Fig9Row {
                algo: algo.label(),
                system: kind.label(),
                time: outcome.execution_time(),
                traffic: outcome.stats.io.total_traffic(),
            });
        }
    }
    Ok(Fig9 { rows })
}

impl Fig9 {
    /// Sums across algorithms for one system: (time, traffic).
    pub fn totals(&self, system: &str) -> (Duration, u64) {
        self.rows
            .iter()
            .filter(|r| r.system == system)
            .fold((Duration::ZERO, 0), |(t, b), r| (t + r.time, b + r.traffic))
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 9: effect of the update strategy, twitter_sim =="
        )?;
        writeln!(
            f,
            "paper: full GraphSD beats b1 (no cross-iteration) by 1.7x and b2 (no selective) by 2.8x;\n\
             I/O traffic 1.6x / 5.4x lower; b2 is worse than b1\n"
        )?;
        let mut t = Table::new(vec!["Algo", "System", "Time(s)", "Traffic(MiB)"]);
        for r in &self.rows {
            t.push(vec![
                r.algo.to_owned(),
                r.system.to_owned(),
                secs(r.time),
                mib(r.traffic),
            ]);
        }
        write!(f, "{t}")?;
        let (t0, b0) = self.totals("GraphSD");
        let (t1, b1) = self.totals("GraphSD-b1");
        let (t2, b2) = self.totals("GraphSD-b2");
        writeln!(
            f,
            "\nvs GraphSD: b1 time {}, traffic {}; b2 time {}, traffic {}",
            ratio(t1.as_secs_f64(), t0.as_secs_f64()),
            ratio(b1 as f64, b0 as f64),
            ratio(t2.as_secs_f64(), t0.as_secs_f64()),
            ratio(b2 as f64, b0 as f64),
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 10 — per-iteration scheduling
// ---------------------------------------------------------------------------

/// Figure 10 result: per-iteration execution time of CC under the three
/// scheduling policies.
pub struct Fig10 {
    /// Per-iteration times of the adaptive scheduler.
    pub adaptive: Vec<Duration>,
    /// Per-iteration times of always-full (b3).
    pub full: Vec<Duration>,
    /// Per-iteration times of always-on-demand (b4).
    pub on_demand: Vec<Duration>,
    /// The model the adaptive scheduler picked per iteration.
    pub chosen: Vec<gsd_runtime::IoAccessModel>,
}

/// Runs the `fig10` experiment (CC on the UKUnion stand-in in the paper).
pub fn fig10(d: &Dataset) -> std::io::Result<Fig10> {
    let per_iter =
        |kind: SystemKind| -> std::io::Result<(Vec<Duration>, Vec<gsd_runtime::IoAccessModel>)> {
            let outcome = run_system(kind, d, Algo::Cc)?;
            Ok((
                outcome
                    .stats
                    .per_iteration
                    .iter()
                    .map(|s| s.io_time + s.compute_time)
                    .collect(),
                outcome
                    .stats
                    .per_iteration
                    .iter()
                    .map(|s| s.model)
                    .collect(),
            ))
        };
    let (adaptive, chosen) = per_iter(SystemKind::GraphSd)?;
    let (full, _) = per_iter(SystemKind::GraphSdB3)?;
    let (on_demand, _) = per_iter(SystemKind::GraphSdB4)?;
    Ok(Fig10 {
        adaptive,
        full,
        on_demand,
        chosen,
    })
}

impl Fig10 {
    /// Total times (adaptive, full, on-demand).
    pub fn totals(&self) -> (Duration, Duration, Duration) {
        (
            self.adaptive.iter().sum(),
            self.full.iter().sum(),
            self.on_demand.iter().sum(),
        )
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 10: per-iteration time of CC, adaptive vs fixed I/O models =="
        )?;
        writeln!(
            f,
            "paper: the adaptive scheduler tracks the better of full (b3) and on-demand (b4) in every iteration\n"
        )?;
        let mut t = Table::new(vec![
            "Iter",
            "Adaptive(s)",
            "Full/b3(s)",
            "OnDemand/b4(s)",
            "Chose",
        ]);
        let n = self
            .adaptive
            .len()
            .max(self.full.len())
            .max(self.on_demand.len());
        let get =
            |v: &Vec<Duration>, k: usize| v.get(k).map(|d| secs(*d)).unwrap_or_else(|| "-".into());
        for k in 0..n {
            t.push(vec![
                (k + 1).to_string(),
                get(&self.adaptive, k),
                get(&self.full, k),
                get(&self.on_demand, k),
                self.chosen
                    .get(k)
                    .map(|m| format!("{m:?}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        write!(f, "{t}")?;
        let (a, b, c) = self.totals();
        writeln!(
            f,
            "\ntotals: adaptive {} | always-full {} | always-on-demand {}",
            secs(a),
            secs(b),
            secs(c)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — scheduler overhead vs saved I/O time
// ---------------------------------------------------------------------------

/// One Figure 11 row.
pub struct Fig11Row {
    /// Algorithm label.
    pub algo: &'static str,
    /// Benefit-evaluation compute time of the adaptive run.
    pub overhead: Duration,
    /// I/O time saved versus always-full (b3) — the static policy of
    /// prior full-streaming systems the scheduler improves on.
    pub saved_vs_full: Duration,
    /// I/O time saved versus always-on-demand (b4).
    pub saved_vs_on_demand: Duration,
}

/// Figure 11 result (Twitter2010 stand-in).
pub struct Fig11 {
    /// All rows.
    pub rows: Vec<Fig11Row>,
}

/// Runs the `fig11` experiment.
pub fn fig11(d: &Dataset) -> std::io::Result<Fig11> {
    let mut rows = Vec::new();
    for algo in Algo::all() {
        let adaptive = run_system(SystemKind::GraphSd, d, algo)?;
        let fixed_full = run_system(SystemKind::GraphSdB3, d, algo)?;
        let fixed_od = run_system(SystemKind::GraphSdB4, d, algo)?;
        rows.push(Fig11Row {
            algo: algo.label(),
            overhead: adaptive.stats.scheduler_time,
            saved_vs_full: fixed_full
                .stats
                .io_time
                .saturating_sub(adaptive.stats.io_time),
            saved_vs_on_demand: fixed_od
                .stats
                .io_time
                .saturating_sub(adaptive.stats.io_time),
        });
    }
    Ok(Fig11 { rows })
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 11: scheduler overhead vs reduced I/O time, twitter_sim =="
        )?;
        writeln!(
            f,
            "paper: overhead is negligible (e.g. PR-D: 3.4s evaluation vs 158s I/O saved)\n"
        )?;
        let mut t = Table::new(vec![
            "Algo",
            "Evaluation overhead(ms)",
            "Saved vs always-full(ms)",
            "Saved vs always-on-demand(ms)",
        ]);
        let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        for r in &self.rows {
            t.push(vec![
                r.algo.to_owned(),
                ms(r.overhead),
                ms(r.saved_vs_full),
                ms(r.saved_vs_on_demand),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Figure 12 — buffering effect
// ---------------------------------------------------------------------------

/// One Figure 12 pair.
pub struct Fig12Row {
    /// Dataset stand-in name.
    pub dataset: String,
    /// Algorithm label.
    pub algo: &'static str,
    /// Execution time with the sub-block buffer.
    pub with_buffer: Duration,
    /// Execution time without it.
    pub without_buffer: Duration,
    /// Bytes served from the buffer.
    pub buffer_hit_bytes: u64,
}

impl Fig12Row {
    /// Relative improvement from buffering.
    pub fn improvement(&self) -> f64 {
        1.0 - self.with_buffer.as_secs_f64() / self.without_buffer.as_secs_f64().max(1e-12)
    }
}

/// Figure 12 result (UKUnion stand-in).
pub struct Fig12 {
    /// All pairs.
    pub rows: Vec<Fig12Row>,
}

/// Runs the `fig12` experiment over one or more datasets (the paper uses
/// UKUnion; we add an R-MAT dataset because the web stand-in's edge mass
/// is nearly all diagonal, leaving almost no secondary blocks to buffer).
pub fn fig12(datasets: &[&Dataset]) -> std::io::Result<Fig12> {
    let mut rows = Vec::new();
    for d in datasets {
        for algo in Algo::all() {
            let with_buffer = run_system(SystemKind::GraphSd, d, algo)?;
            let without = run_system(SystemKind::GraphSdNoBuffer, d, algo)?;
            rows.push(Fig12Row {
                dataset: d.name.to_owned(),
                algo: algo.label(),
                with_buffer: with_buffer.execution_time(),
                without_buffer: without.execution_time(),
                buffer_hit_bytes: with_buffer.stats.buffer_hit_bytes,
            });
        }
    }
    Ok(Fig12 { rows })
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 12: effect of the sub-block buffering scheme, ukunion_sim =="
        )?;
        writeln!(f, "paper: buffering improves execution time by up to 21%\n")?;
        let mut t = Table::new(vec![
            "Dataset",
            "Algo",
            "With buffer(s)",
            "Without(s)",
            "Improvement",
            "Buffer hits(MiB)",
        ]);
        for r in &self.rows {
            t.push(vec![
                r.dataset.clone(),
                r.algo.to_owned(),
                secs(r.with_buffer),
                secs(r.without_buffer),
                format!("{:.1}%", r.improvement() * 100.0),
                mib(r.buffer_hit_bytes),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Extension: storage-device sensitivity (the paper's future-work direction)
// ---------------------------------------------------------------------------

/// One storage-sweep row.
pub struct ExtStorageRow {
    /// Device label.
    pub device: &'static str,
    /// Algorithm label.
    pub algo: &'static str,
    /// Execution times: GraphSD, HUS-Graph, Lumos.
    pub times: [Duration; 3],
}

impl ExtStorageRow {
    /// Lumos time / GraphSD time on this device.
    pub fn speedup_vs_lumos(&self) -> f64 {
        self.times[2].as_secs_f64() / self.times[0].as_secs_f64().max(1e-12)
    }

    /// HUS-Graph time / GraphSD time on this device.
    pub fn speedup_vs_hus(&self) -> f64 {
        self.times[1].as_secs_f64() / self.times[0].as_secs_f64().max(1e-12)
    }
}

/// Extension experiment: the same comparison on progressively faster
/// storage (HDD -> SATA SSD -> NVMe).
pub struct ExtStorage {
    /// All rows.
    pub rows: Vec<ExtStorageRow>,
}

/// Runs the `ext_storage` extension: PR-D and SSSP on the UK2007 stand-in
/// across three device classes. The paper's conclusion names faster
/// storage (Optane PMM) as future work; this measures how the update
/// strategy's advantage responds as random access gets cheaper.
pub fn ext_storage(d: &Dataset) -> std::io::Result<ExtStorage> {
    use crate::runner::run_system_on_device;
    use gsd_io::DiskModel;
    let mut rows = Vec::new();
    for (device, model) in [
        ("hdd", DiskModel::hdd()),
        ("ssd", DiskModel::ssd()),
        ("nvme", DiskModel::nvme()),
    ] {
        for algo in [Algo::PrD, Algo::Sssp] {
            let mut times = [Duration::ZERO; 3];
            for (k, kind) in SystemKind::main_three().into_iter().enumerate() {
                times[k] = run_system_on_device(kind, d, algo, model)?.execution_time();
            }
            rows.push(ExtStorageRow {
                device,
                algo: algo.label(),
                times,
            });
        }
    }
    Ok(ExtStorage { rows })
}

impl fmt::Display for ExtStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Extension: storage-device sensitivity (uk_sim) ==")?;
        writeln!(
            f,
            "paper future work: exploit faster storage. Finding: GraphSD's margin over Lumos\n\
             persists on SSD but narrows on NVMe, and on NVMe the contiguous-layout selective\n\
             design (HUS-Graph's CSR row copy) can overtake the grid layout: cheap random access\n\
             erases the seek economics the 2-D grid is built around.\n"
        )?;
        let mut t = Table::new(vec!["Device", "Algo", "GraphSD(s)", "HUS-Graph", "Lumos"]);
        for r in &self.rows {
            t.push(vec![
                r.device.to_owned(),
                r.algo.to_owned(),
                secs(r.times[0]),
                format!("{:.2}", r.speedup_vs_hus()),
                format!("{:.2}", r.speedup_vs_lumos()),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------------
// Extension: interval-count (P) sensitivity
// ---------------------------------------------------------------------------

/// One P-sweep row.
pub struct ExtPsweepRow {
    /// Interval count.
    pub p: u32,
    /// GraphSD execution time for PR (dense) and SSSP (frontier-driven).
    pub pr_time: Duration,
    /// SSSP execution time.
    pub sssp_time: Duration,
    /// SSSP I/O traffic.
    pub sssp_traffic: u64,
}

/// Extension experiment: how the grid's interval count `P` trades seek
/// count against selectivity.
pub struct ExtPsweep {
    /// All rows, ascending in `P`.
    pub rows: Vec<ExtPsweepRow>,
}

/// Runs the `ext_psweep` extension on the UK2007 stand-in: the paper fixes
/// `P` via the 5 % memory-budget rule (P = 20); this sweep shows the design
/// space around that point. Small `P` = fewer, larger blocks (cheap
/// streaming, coarse selectivity); large `P` = finer selective reads but
/// more per-block requests.
pub fn ext_psweep(d: &Dataset) -> std::io::Result<ExtPsweep> {
    use crate::runner::run_system_with_p;
    let mut rows = Vec::new();
    for p in [4u32, 10, 20, 40] {
        let pr = run_system_with_p(SystemKind::GraphSd, d, Algo::Pr, p)?;
        let sssp = run_system_with_p(SystemKind::GraphSd, d, Algo::Sssp, p)?;
        rows.push(ExtPsweepRow {
            p,
            pr_time: pr.execution_time(),
            sssp_time: sssp.execution_time(),
            sssp_traffic: sssp.stats.io.total_traffic(),
        });
    }
    Ok(ExtPsweep { rows })
}

impl fmt::Display for ExtPsweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Extension: interval-count (P) sensitivity, uk_sim ==")?;
        writeln!(
            f,
            "design-choice ablation: the paper's 5% budget rule implies P = 20; the sweep shows the\n\
             seek-count vs selectivity trade around that point\n"
        )?;
        let mut t = Table::new(vec!["P", "PR time(s)", "SSSP time(s)", "SSSP traffic(MiB)"]);
        for r in &self.rows {
            t.push(vec![
                r.p.to_string(),
                secs(r.pr_time),
                secs(r.sssp_time),
                mib(r.sssp_traffic),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs one experiment by id and returns its rendered output.
pub fn run_by_id(id: &str, ds: &Datasets) -> std::io::Result<String> {
    Ok(match id {
        "table1" => table1(ds).to_string(),
        "table3" => table3(ds).to_string(),
        "table4" => table4(ds)?.to_string(),
        "fig5" => fig5(ds.all())?.to_string(),
        "fig6" => fig6(ds.get("twitter_sim").unwrap()).map(|x| x.to_string())?,
        "fig7" => {
            let targets = [ds.get("twitter_sim").unwrap(), ds.get("uk_sim").unwrap()];
            fig7(&targets)?.to_string()
        }
        "fig8" => fig8(ds)?.to_string(),
        "fig9" => fig9(ds.get("twitter_sim").unwrap())?.to_string(),
        "fig10" => fig10(ds.get("ukunion_sim").unwrap())?.to_string(),
        "fig11" => fig11(ds.get("twitter_sim").unwrap())?.to_string(),
        "fig12" => {
            let targets = [ds.get("ukunion_sim").unwrap(), ds.get("kron_sim").unwrap()];
            fig12(&targets)?.to_string()
        }
        "ext_storage" => ext_storage(ds.get("uk_sim").unwrap())?.to_string(),
        "ext_psweep" => ext_psweep(ds.get("uk_sim").unwrap())?.to_string(),
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown experiment id: {other}"),
            ))
        }
    })
}

/// All experiment ids, in paper order (plus extensions).
pub const ALL_IDS: [&str; 13] = [
    "table1",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ext_storage",
    "ext_psweep",
];
