//! Delta-cycle benchmark: the cost of mutating a live grid.
//!
//! Where [`crate::wall`] times from-scratch analytic runs, this mode
//! times the full streaming-mutation cycle `gsd ingest` exercises:
//! commit a mutation batch as a delta epoch, warm-start BFS from the
//! batch's footprint ([`gsd_delta::incremental_run`]), and fold the
//! segments back into the base grid ([`gsd_delta::compact`]). The warm
//! from-scratch BFS that produces the pre-batch values is setup, not
//! measurement — it models the converged state a long-running service
//! holds when a batch arrives.
//!
//! Every repeat rebuilds the grid from the dataset in a fresh temp
//! directory (ingest mutates the format on disk, so repeats cannot share
//! one). The deterministic counters land in the usual [`BenchEntry`]
//! slots — incremental-run iterations as `iterations`, its storage
//! traffic in the byte fields — so `--baseline` gates the delta path in
//! CI through [`gsd_metrics::BenchReport::compare_deterministic`] with
//! no schema change. Two post-conditions gate every repeat before its
//! sample counts: compaction must fold the epoch it just created, and a
//! full scrub of the compacted grid must come back clean.

use crate::datasets::{Dataset, Datasets};
use crate::runner::{paper_p, prepare_format, SystemKind};
use crate::wall::{scale_name, WallOptions};
use gsd_algos::Bfs;
use gsd_core::{GraphSdConfig, GraphSdEngine};
use gsd_delta::MutationBatch;
use gsd_graph::{scrub_grid, Graph, GridGraph};
use gsd_io::{FileStorage, SharedStorage, TempDir};
use gsd_metrics::{median, BenchEntry, BenchReport, BENCH_SCHEMA_VERSION};
use gsd_runtime::{Engine, RunOptions, RunStats};
use gsd_trace::Stopwatch;
use std::io::{Error, ErrorKind, Result};
use std::sync::Arc;

/// Runs the delta cycle over every selected dataset.
///
/// Reuses [`WallOptions`] for label/warmup/repeats/scale/datasets; the
/// `systems`, `algos` and `prefetch` fields are ignored (the cycle under
/// test is GraphSD-only and reads through the overlay, not the
/// prefetch pipeline).
pub fn run_delta(opts: &WallOptions) -> Result<BenchReport> {
    let repeats = opts.repeats.max(1);
    let datasets = Datasets::load(opts.scale);
    let mut entries = Vec::new();
    for ds in datasets.all() {
        if !opts.datasets.is_empty() && !opts.datasets.iter().any(|n| n == ds.name) {
            continue;
        }
        entries.push(bench_dataset(ds, opts.warmup, repeats)?);
    }
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: opts.label.clone(),
        scale: scale_name(opts.scale).to_string(),
        warmup: opts.warmup,
        repeats,
        prefetch: false,
        entries,
    })
}

/// The fixed mutation batch for a dataset: six inserts fanning out from
/// the BFS root plus deletions of the root's first two existing out-edges,
/// every endpoint derived from `(n, root)` so repeats are replays.
/// Deleting real edges (not arbitrary pairs) keeps the incremental
/// run's delete path — region closure and resets — on the measured path.
fn delta_batch(graph: &Graph, root: u32) -> MutationBatch {
    let n = graph.num_vertices();
    let step = (n / 7).max(1);
    let mut batch = MutationBatch::new();
    for k in 0..6u32 {
        let src = (root + k * step) % n;
        let dst = (root + (k + 3) * step + 1) % n;
        if src != dst {
            batch.insert(src, dst, 1.0);
        }
    }
    let mut deleted = 0;
    for e in graph.edges() {
        if e.src == root && e.src != e.dst {
            batch.delete(e.src, e.dst);
            deleted += 1;
            if deleted == 2 {
                break;
            }
        }
    }
    batch
}

fn bench_dataset(ds: &Dataset, warmup: u32, repeats: u32) -> Result<BenchEntry> {
    let graph = ds.directed();
    let root = ds.root();
    let batch = delta_batch(graph, root);

    let run_once = || -> Result<(u64, RunStats, u64)> {
        // Fresh grid per repeat: ingest and compaction rewrite the
        // on-disk format, so state must never leak between repeats.
        let dir = TempDir::new("gsd-deltabench")?;
        let storage: SharedStorage = Arc::new(FileStorage::open(dir.path())?);
        prepare_format(SystemKind::GraphSd, graph, &storage, paper_p(graph))?;

        // Converge on the pre-batch grid (setup, untimed): the warm
        // values a service holds when the batch arrives.
        let grid = GridGraph::open(storage.clone())?;
        let mut engine = GraphSdEngine::new(grid, GraphSdConfig::full())?;
        let warm = engine.run(&Bfs::new(root), &RunOptions::default())?;

        let sink = gsd_trace::null_sink();
        let watch = Stopwatch::start();
        let report = gsd_delta::ingest(storage.as_ref(), "", &batch, sink.as_ref())?;
        let grid = GridGraph::open(storage.clone())?;
        let (result, inc) = gsd_delta::incremental_run(
            grid,
            &Bfs::new(root),
            warm.values,
            &batch,
            GraphSdConfig::full(),
            sink.clone(),
        )?;
        let compacted = gsd_delta::compact(&storage, "", sink.as_ref())?;
        let wall = watch.elapsed().as_micros() as u64;

        let folded = compacted.ok_or_else(|| {
            Error::new(
                ErrorKind::InvalidData,
                format!("delta/{}: compaction found nothing to fold", ds.name),
            )
        })?;
        if folded.segments_folded != report.segments {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "delta/{}: ingest wrote {} segment(s) but compaction folded {}",
                    ds.name, report.segments, folded.segments_folded
                ),
            ));
        }
        let (_, scrub) = scrub_grid(storage.as_ref(), "")?;
        if !scrub.is_clean() {
            let (_, corrupt) = scrub.counts();
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "delta/{}: {corrupt} corrupt object(s) after compaction",
                    ds.name
                ),
            ));
        }
        Ok((wall, result.stats, inc.seeds))
    };

    for _ in 0..warmup {
        run_once()?;
    }
    let mut samples: Vec<(u64, RunStats, u64)> = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        samples.push(run_once()?);
    }

    // The whole cycle is deterministic: any drift in the incremental
    // run's replayed-work counters between repeats is a correctness bug.
    let (_, first, first_seeds) = &samples[0];
    for (wall, stats, seeds) in &samples[1..] {
        if stats.iterations != first.iterations
            || stats.io.read_bytes() != first.io.read_bytes()
            || stats.io.write_bytes != first.io.write_bytes
            || seeds != first_seeds
        {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "delta/{}: repeats disagree on deterministic counters \
                     (iterations {} vs {}, read {} vs {}, seeds {} vs {}; wall {wall}us)",
                    ds.name,
                    stats.iterations,
                    first.iterations,
                    stats.io.read_bytes(),
                    first.io.read_bytes(),
                    seeds,
                    first_seeds,
                ),
            ));
        }
    }

    let walls: Vec<u64> = samples.iter().map(|(w, _, _)| *w).collect();
    let wall_us_median = median(&walls);
    let (_, stats, _) = samples
        .iter()
        .find(|(w, _, _)| *w == wall_us_median)
        .unwrap_or(&samples[0]);
    Ok(BenchEntry {
        system: "gsd-delta".to_string(),
        algorithm: "bfs".to_string(),
        dataset: ds.name.to_string(),
        iterations: stats.iterations,
        wall_us: walls,
        wall_us_median,
        io_wait_us: 0,
        compute_us: stats.compute_time.as_micros() as u64,
        stall_us: 0,
        scheduler_us: stats.scheduler_time.as_micros() as u64,
        bytes_read: stats.io.read_bytes(),
        bytes_written: stats.io.write_bytes,
        prefetch_hits: 0,
        prefetch_misses: 0,
        prefetch_hit_rate: 0.0,
        peak_rss_bytes: gsd_metrics::rss::peak_rss_bytes().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Scale;

    fn tiny_opts() -> WallOptions {
        WallOptions {
            label: "delta-unit".to_string(),
            warmup: 0,
            repeats: 2,
            scale: Scale::Tiny,
            datasets: vec!["twitter_sim".to_string()],
            ..WallOptions::default()
        }
    }

    #[test]
    fn delta_report_is_schema_valid_and_incremental() {
        let report = run_delta(&tiny_opts()).unwrap();
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.system, "gsd-delta");
        assert_eq!(e.algorithm, "bfs");
        assert!(e.bytes_read > 0, "the incremental run must touch disk");
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn delta_counters_are_stable_across_harness_invocations() {
        let a = run_delta(&tiny_opts()).unwrap();
        let b = run_delta(&tiny_opts()).unwrap();
        assert_eq!(b.compare_deterministic(&a), Ok(1));
    }
}
