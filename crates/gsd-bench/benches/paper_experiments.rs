//! `cargo bench` target that regenerates every table and figure of the
//! paper (scaled stand-ins, simulated HDD). Not a criterion harness — the
//! experiments are end-to-end runs whose output *is* the result.

use gsd_bench::experiments::{run_by_id, ALL_IDS};
use gsd_bench::{Datasets, Scale};

fn main() {
    // `cargo bench` passes --bench; ignore filter-style args.
    let scale = Scale::from_env();
    eprintln!("# paper_experiments — scale {scale:?} (set GSD_SCALE=tiny|small|medium)");
    let ds = Datasets::load(scale);
    for id in ALL_IDS {
        let started = std::time::Instant::now();
        match run_by_id(id, &ds) {
            Ok(output) => {
                println!("{output}");
                eprintln!("# [{id}] done in {:.1}s\n", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("# [{id}] FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
