//! Criterion micro-benchmarks for the hot building blocks: grid
//! partitioning, frontier operations, the scatter/apply kernels, the
//! scheduler's S_seq/S_ran split, and simulated-disk overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsd_algos::PageRank;
use gsd_core::Scheduler;
use gsd_graph::{preprocess, GeneratorConfig, GraphKind, PreprocessConfig};
use gsd_io::{DiskModel, MemStorage, SimDisk, Storage};
use gsd_runtime::kernels::{apply_range, scatter_edges};
use gsd_runtime::{Frontier, ProgramContext, ValueArray};
use std::sync::Arc;

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    for &edges in &[100_000u64, 400_000] {
        let g = GeneratorConfig::new(GraphKind::RMat, (edges / 16) as u32, edges, 7).generate();
        group.throughput(Throughput::Elements(edges));
        group.bench_with_input(
            BenchmarkId::new("grid_partition_sort", edges),
            &g,
            |b, g| {
                b.iter(|| {
                    let store = MemStorage::new();
                    preprocess(g, &store, &PreprocessConfig::graphsd("").with_intervals(8)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier");
    let n = 1_000_000u32;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("insert_all", |b| {
        b.iter(|| {
            let f = Frontier::empty(n);
            for v in 0..n {
                f.insert(v);
            }
            f
        })
    });
    let f = Frontier::full(n);
    group.bench_function("count_full", |b| b.iter(|| f.count()));
    group.bench_function("iter_full", |b| b.iter(|| f.iter().sum::<u32>()));
    let sparse = Frontier::from_seeds(n, &(0..n).step_by(1000).collect::<Vec<_>>());
    group.bench_function("iter_sparse_0.1pct", |b| {
        b.iter(|| sparse.iter().sum::<u32>())
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let g = GeneratorConfig::new(GraphKind::RMat, 50_000, 400_000, 9).generate();
    let n = g.num_vertices();
    let ctx = ProgramContext::new(n, Arc::new(g.out_degrees()));
    let pr = PageRank::paper();
    let values = ValueArray::<f32>::new(n as usize, 1.0);
    let accum = ValueArray::<f32>::new(n as usize, 0.0);
    let touched = Frontier::empty(n);
    let edges = g.edges().to_vec();
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("scatter_pagerank_400k_edges", |b| {
        b.iter(|| scatter_edges(&pr, &ctx, &edges, None, &values, &accum, &touched))
    });
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("apply_pagerank_50k_vertices", |b| {
        b.iter(|| {
            let out = Frontier::empty(n);
            apply_range(&pr, &ctx, 0..n, true, &touched, &accum, &values, &out)
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let n = 1_000_000u32;
    let degrees = vec![8u32; n as usize];
    for &active in &[1_000u32, 100_000] {
        let frontier =
            Frontier::from_seeds(n, &(0..active).map(|k| (k * 7919) % n).collect::<Vec<_>>());
        group.throughput(Throughput::Elements(active as u64));
        group.bench_with_input(
            BenchmarkId::new("benefit_evaluation", active),
            &frontier,
            |b, f| {
                b.iter(|| {
                    let mut s =
                        Scheduler::new(DiskModel::hdd(), 4 * n as u64, 64_000_000, 8, 256 << 10);
                    s.select(1, f, &degrees)
                })
            },
        );
    }
    group.finish();
}

fn bench_sim_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_disk");
    let sim = SimDisk::new(DiskModel::hdd());
    sim.create("blob", &vec![0u8; 8 << 20]).unwrap();
    let mut buf = vec![0u8; 1 << 20];
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("read_1mib", |b| {
        let mut offset = 0u64;
        b.iter(|| {
            sim.read_at("blob", offset % (7 << 20), &mut buf).unwrap();
            offset += 1 << 20;
        })
    });
    group.finish();
}

fn bench_value_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_array");
    let arr = ValueArray::<f32>::new(1_000_000, 0.0);
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("combine_sum_1m", |b| {
        b.iter(|| {
            for v in 0..1_000_000u32 {
                arr.combine(v, 1.0, |a, b| a + b);
            }
        })
    });
    group.bench_function("fill_1m", |b| b.iter(|| arr.fill(0.0)));
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioning,
    bench_frontier,
    bench_kernels,
    bench_scheduler,
    bench_sim_disk,
    bench_value_array
);
criterion_main!(benches);
