//! A labeled metrics registry.
//!
//! Series are identified by a [`SeriesKey`]: a metric name plus a sorted
//! label set, Prometheus-style (`gsd_block_loads_total{seq="true"}`).
//! Three kinds are supported — monotonic counters, point-in-time gauges
//! and log₂ [`Histogram`]s (shared with `gsd-trace`, so snapshots carry
//! the same p50/p95/p99 accessors everywhere). Everything is snapshotted
//! into an immutable [`MetricsSnapshot`] before rendering, so exposition
//! never holds a registry lock across I/O.

use gsd_trace::{Histogram, HistogramSnapshot};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A metric series identifier: name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name (`gsd_iterations_total`, ...).
    pub name: String,
    /// Label pairs, sorted by label name at construction.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// A key for `name` with no labels.
    pub fn plain(name: impl Into<String>) -> Self {
        SeriesKey {
            name: name.into(),
            labels: Vec::new(),
        }
    }

    /// A key for `name` with the given labels (sorted internally so the
    /// same label set always maps to the same series).
    pub fn with_labels(name: impl Into<String>, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.into(),
            labels,
        }
    }

    /// Renders `name{label="value",...}` (or just `name` without labels).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", k, crate::expo::escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

impl Serialize for SeriesKey {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "labels".to_string(),
                Value::Map(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Arc<Histogram>>,
    /// Histogram snapshots imported from an external source (e.g. a
    /// storage backend's `CounterRegistry`), upserted wholesale.
    imported: BTreeMap<SeriesKey, HistogramSnapshot>,
    help: BTreeMap<String, String>,
}

/// A thread-safe collection of labeled metric series.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `delta` to the counter series `key`.
    pub fn inc(&self, key: SeriesKey, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(key).or_insert(0) += delta;
    }

    /// Sets the gauge series `key` to `value`.
    pub fn set_gauge(&self, key: SeriesKey, value: f64) {
        self.lock().gauges.insert(key, value);
    }

    /// Records `value` into the histogram series `key`.
    pub fn observe(&self, key: SeriesKey, value: u64) {
        let h = {
            let mut inner = self.lock();
            inner
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new()))
                .clone()
        };
        h.record(value);
    }

    /// Replaces the imported (externally-snapshotted) histogram `key`.
    /// Unlike [`observe`](Self::observe) this upserts a whole snapshot at
    /// once — used to mirror a storage backend's `CounterRegistry` whose
    /// recording happens outside this registry.
    pub fn import_histogram(&self, key: SeriesKey, snapshot: HistogramSnapshot) {
        self.lock().imported.insert(key, snapshot);
    }

    /// Registers a `# HELP` string for metric `name`.
    pub fn set_help(&self, name: impl Into<String>, help: impl Into<String>) {
        self.lock().help.insert(name.into(), help.into());
    }

    /// Current value of the counter series `key` (0 if never incremented).
    pub fn counter_value(&self, key: &SeriesKey) -> u64 {
        self.lock().counters.get(key).copied().unwrap_or(0)
    }

    /// Point-in-time copy of every series, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut histograms: Vec<(SeriesKey, HistogramSnapshot)> = inner
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        histograms.extend(inner.imported.iter().map(|(k, s)| (k.clone(), s.clone())));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms,
            help: inner
                .help
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// An immutable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter series, sorted by key.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauge series, sorted by key.
    pub gauges: Vec<(SeriesKey, f64)>,
    /// Histogram series, sorted by key.
    pub histograms: Vec<(SeriesKey, HistogramSnapshot)>,
    /// `# HELP` strings, by metric name.
    pub help: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Total number of series across all kinds.
    pub fn series_count(&self) -> u64 {
        (self.counters.len() + self.gauges.len() + self.histograms.len()) as u64
    }

    /// Renders the snapshot in the format `fmt`.
    pub fn render(&self, fmt: crate::expo::ExpoFormat) -> String {
        match fmt {
            crate::expo::ExpoFormat::Prometheus => crate::expo::to_prometheus(self),
            crate::expo::ExpoFormat::Json => crate::expo::to_json(self),
        }
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let series = |k: &SeriesKey, v: Value| -> Value {
            Value::Map(vec![
                ("series".to_string(), Value::Str(k.render())),
                ("value".to_string(), v),
            ])
        };
        Value::Map(vec![
            (
                "counters".to_string(),
                Value::Seq(
                    self.counters
                        .iter()
                        .map(|(k, v)| series(k, Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Seq(
                    self.gauges
                        .iter()
                        .map(|(k, v)| series(k, Value::F64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Seq(
                    self.histograms
                        .iter()
                        .map(|(k, v)| series(k, v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = MetricsRegistry::new();
        reg.inc(SeriesKey::with_labels("loads", &[("seq", "true")]), 2);
        reg.inc(SeriesKey::with_labels("loads", &[("seq", "true")]), 3);
        reg.inc(SeriesKey::with_labels("loads", &[("seq", "false")]), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(
            reg.counter_value(&SeriesKey::with_labels("loads", &[("seq", "true")])),
            5
        );
        assert_eq!(
            reg.counter_value(&SeriesKey::with_labels("loads", &[("seq", "false")])),
            1
        );
    }

    #[test]
    fn label_order_is_canonical() {
        // The same label set in any order maps to the same series.
        let a = SeriesKey::with_labels("m", &[("b", "2"), ("a", "1")]);
        let b = SeriesKey::with_labels("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), r#"m{a="1",b="2"}"#);
        assert_eq!(SeriesKey::plain("m").render(), "m");
    }

    #[test]
    fn histograms_snapshot_with_quantiles() {
        let reg = MetricsRegistry::new();
        for _ in 0..99 {
            reg.observe(SeriesKey::plain("lat_us"), 10);
        }
        reg.observe(SeriesKey::plain("lat_us"), 100_000);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 100);
        assert_eq!(h.p50(), Some(15));
        assert_eq!(h.p99(), Some(15));
        assert_eq!(h.quantile(1.0), Some(131_071));
    }

    #[test]
    fn imported_histograms_appear_in_snapshot() {
        let reg = MetricsRegistry::new();
        let src = Histogram::new();
        src.record(4096);
        reg.import_histogram(SeriesKey::plain("storage_read_bytes"), src.snapshot());
        // Re-import replaces, not merges.
        src.record(8192);
        reg.import_histogram(SeriesKey::plain("storage_read_bytes"), src.snapshot());
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);
        assert_eq!(snap.series_count(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.set_gauge(SeriesKey::plain("frontier"), 10.0);
        reg.set_gauge(SeriesKey::plain("frontier"), 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges, vec![(SeriesKey::plain("frontier"), 3.0)]);
    }
}
