//! Post-processing of a JSONL trace into run analytics (`gsd report`).
//!
//! A [`TraceReport`] replays a trace file event by event and rebuilds,
//! per run: the per-phase time breakdown, an I/O request-size histogram,
//! prefetch hit/stall analysis, the hottest edge sub-blocks, and every
//! state-aware scheduler decision with its cost terms (`C_s`/`C_r`)
//! explained. Because the engines emit exactly one event per counted
//! action (one `BufferHit` per `RunStats::buffer_hits` increment, one
//! `PrefetchStall` per miss, ...), a replay over a complete trace
//! reproduces the run's `RunStats` counters **exactly** —
//! [`RunSection::matches_run_stats`] asserts that and is wired into the
//! end-to-end tests.

use gsd_runtime::RunStats;
use gsd_trace::{Histogram, HistogramSnapshot};
use serde::Value;
use std::collections::BTreeMap;
use std::io::BufRead;

fn get_u64(v: &Value, name: &str) -> Option<u64> {
    match v.get(name) {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) => u64::try_from(*n).ok(),
        Some(Value::F64(f)) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn get_f64(v: &Value, name: &str) -> Option<f64> {
    match v.get(name) {
        Some(Value::F64(f)) => Some(*f),
        Some(Value::U64(n)) => Some(*n as f64),
        Some(Value::I64(n)) => Some(*n as f64),
        _ => None,
    }
}

fn get_str<'v>(v: &'v Value, name: &str) -> Option<&'v str> {
    match v.get(name) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn get_bool(v: &Value, name: &str) -> Option<bool> {
    match v.get(name) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// One `IterationEnd` row.
#[derive(Debug, Clone, PartialEq)]
pub struct IterRow {
    /// 1-based iteration number.
    pub iteration: u32,
    /// Access model (`"on_demand"` or `"full"`).
    pub model: String,
    /// Frontier size at the start of the iteration.
    pub frontier: u64,
    /// Bytes read from storage during the iteration.
    pub bytes_read: u64,
    /// Microseconds in the scatter kernel.
    pub scatter_us: u64,
    /// Microseconds in the apply kernel.
    pub apply_us: u64,
    /// Microseconds blocked on storage.
    pub io_wait_us: u64,
}

/// One state-aware scheduler decision with its cost-model terms.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRow {
    /// Iteration the decision applies to.
    pub iteration: u32,
    /// Active vertices classified sequential (clustered).
    pub s_seq: u64,
    /// Active vertices classified random (scattered).
    pub s_ran: u64,
    /// Estimated seconds for the full streaming model (`C_s`).
    pub cost_full: f64,
    /// Estimated seconds for the on-demand model (`C_r`).
    pub cost_on_demand: f64,
    /// The model the scheduler picked.
    pub chosen: String,
}

impl DecisionRow {
    /// A one-line human explanation of the decision in terms of the
    /// paper's cost model (§4.1): the scheduler streams the full grid
    /// when `C_s <= C_r` and loads selectively otherwise.
    pub fn explain(&self) -> String {
        let active = self.s_seq + self.s_ran;
        let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { f64::INFINITY };
        if self.chosen == "full" {
            format!(
                "iter {}: chose full streaming - C_s {:.4}s <= C_r {:.4}s ({:.1}x cheaper); \
                 {} active vertices ({} clustered / {} scattered) make selective loads seek-bound",
                self.iteration,
                self.cost_full,
                self.cost_on_demand,
                ratio(self.cost_on_demand, self.cost_full),
                active,
                self.s_seq,
                self.s_ran,
            )
        } else {
            format!(
                "iter {}: chose on-demand loads - C_r {:.4}s < C_s {:.4}s ({:.1}x cheaper); \
                 frontier of {} ({} clustered / {} scattered) is sparse enough to skip cold blocks",
                self.iteration,
                self.cost_on_demand,
                self.cost_full,
                ratio(self.cost_full, self.cost_on_demand),
                active,
                self.s_seq,
                self.s_ran,
            )
        }
    }
}

/// Per-sub-block load accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockActivity {
    /// Number of loads of this block.
    pub loads: u64,
    /// Total bytes those loads requested.
    pub bytes: u64,
}

/// The trace-derived counters that must agree with the run's `RunStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayedCounters {
    /// Max `IterationEnd` iteration number.
    pub iterations: u32,
    /// Sum of `IterationEnd::bytes_read` (equals the sum of the run's
    /// per-iteration I/O snapshots; run-level `RunStats::io` may exceed
    /// it by reads outside iteration boundaries, e.g. preprocessing).
    pub bytes_read: u64,
    /// `BufferHit` events.
    pub buffer_hits: u64,
    /// Sum of `BufferHit::bytes`.
    pub buffer_hit_bytes: u64,
    /// `PrefetchHit` events.
    pub prefetch_hits: u64,
    /// `PrefetchStall` events (one per `RunStats::prefetch_misses`).
    pub prefetch_misses: u64,
    /// Sum of `SciuPass`/`FciuPass` `edges_served`.
    pub cross_iter_edges: u64,
}

/// Everything replayed from one `RunStart`..`RunEnd` span.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSection {
    /// Engine name from `RunStart`.
    pub engine: String,
    /// Algorithm label from `RunStart`.
    pub algorithm: String,
    /// Iterations reported by `RunEnd` (0 if the trace was truncated).
    pub run_end_iterations: u32,
    /// One row per `IterationEnd`, in trace order.
    pub iterations: Vec<IterRow>,
    /// Scheduler decisions, in trace order.
    pub decisions: Vec<DecisionRow>,
    /// Load activity per `(i, j)` sub-block.
    pub blocks: BTreeMap<(u32, u32), BlockActivity>,
    /// Request-size distribution of `BlockLoad` events.
    pub io_size_hist: HistogramSnapshot,
    /// Sequential `BlockLoad`s (part of a streaming sweep).
    pub seq_loads: u64,
    /// Selective (on-demand) `BlockLoad`s.
    pub rand_loads: u64,
    /// `ValueFlush` read-ins and their bytes.
    pub value_reads: (u64, u64),
    /// `ValueFlush` write-backs and their bytes.
    pub value_writes: (u64, u64),
    /// `PrefetchIssued` events and their bytes.
    pub prefetch_issued: (u64, u64),
    /// Bytes served by prefetch hits.
    pub prefetch_hit_bytes: u64,
    /// Total `PrefetchStall` wait, microseconds.
    pub prefetch_stall_us: u64,
    /// Stall-wait distribution, microseconds.
    pub stall_hist: HistogramSnapshot,
    /// Buffer evictions and their bytes.
    pub evictions: (u64, u64),
    /// `CkptWritten` events and their bytes.
    pub ckpt_written: (u64, u64),
    /// `CkptRestored` events and their bytes.
    pub ckpt_restored: (u64, u64),
    /// `IoRetry` events.
    pub io_retries: u64,
    /// `IoGaveUp` events.
    pub io_gave_up: u64,
    /// `ChecksumOk` events and their bytes.
    pub verify_ok: (u64, u64),
    /// `CorruptionDetected` events.
    pub corruptions: u64,
    /// `BlockRepaired` events.
    pub repairs: u64,
    /// The exactly-reproducible counters (see [`ReplayedCounters`]).
    pub counters: ReplayedCounters,
}

impl RunSection {
    /// The replayed counters that must equal the run's `RunStats`.
    pub fn replayed_counters(&self) -> ReplayedCounters {
        self.counters
    }

    /// Total microseconds per phase across all iterations:
    /// `(scatter, apply, io_wait)`.
    pub fn phase_totals_us(&self) -> (u64, u64, u64) {
        self.iterations.iter().fold((0, 0, 0), |(s, a, w), it| {
            (s + it.scatter_us, a + it.apply_us, w + it.io_wait_us)
        })
    }

    /// The `n` sub-blocks with the most bytes loaded, descending (ties
    /// broken by coordinates for determinism).
    pub fn hottest_blocks(&self, n: usize) -> Vec<((u32, u32), BlockActivity)> {
        let mut v: Vec<((u32, u32), BlockActivity)> =
            self.blocks.iter().map(|(k, a)| (*k, *a)).collect();
        v.sort_by(|a, b| b.1.bytes.cmp(&a.1.bytes).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Checks that this section's replayed counters equal `stats`'
    /// counters, field by field. `bytes_read` is compared against the
    /// sum of the per-iteration I/O snapshots (the run-level total also
    /// counts reads outside iteration boundaries). Returns every
    /// mismatching field in the error.
    pub fn matches_run_stats(&self, stats: &RunStats) -> Result<(), String> {
        let mut mismatches = Vec::new();
        let mut check = |what: &str, replayed: u64, stat: u64| {
            if replayed != stat {
                mismatches.push(format!("{what}: trace replay {replayed} != stats {stat}"));
            }
        };
        let c = &self.counters;
        check(
            "iterations",
            u64::from(c.iterations),
            u64::from(stats.iterations),
        );
        let per_iter_read: u64 = stats
            .per_iteration
            .iter()
            .map(|it| it.io.read_bytes())
            .sum();
        check("bytes_read", c.bytes_read, per_iter_read);
        check("buffer_hits", c.buffer_hits, stats.buffer_hits);
        check(
            "buffer_hit_bytes",
            c.buffer_hit_bytes,
            stats.buffer_hit_bytes,
        );
        check("prefetch_hits", c.prefetch_hits, stats.prefetch_hits);
        check("prefetch_misses", c.prefetch_misses, stats.prefetch_misses);
        check(
            "cross_iter_edges",
            c.cross_iter_edges,
            stats.cross_iter_edges,
        );
        if self.engine != stats.engine {
            mismatches.push(format!(
                "engine: trace {:?} != stats {:?}",
                self.engine, stats.engine
            ));
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches.join("\n"))
        }
    }
}

/// Accumulators that need a live [`Histogram`] while replaying; folded
/// into the [`RunSection`] snapshots when the section closes.
#[derive(Default)]
struct LiveSection {
    section: RunSection,
    io_sizes: Histogram,
    stalls: Histogram,
}

impl LiveSection {
    fn close(mut self) -> RunSection {
        self.section.io_size_hist = self.io_sizes.snapshot();
        self.section.stall_hist = self.stalls.snapshot();
        self.section
    }
}

/// A replayed trace: one [`RunSection`] per `RunStart` seen, plus
/// bookkeeping for malformed or out-of-run events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Replayed runs, in trace order.
    pub runs: Vec<RunSection>,
    /// Events seen outside any `RunStart`..`RunEnd` span.
    pub unattributed: u64,
    /// Lines that failed to parse or lacked required fields.
    pub parse_errors: u64,
    /// Total events parsed (including unattributed ones).
    pub total_events: u64,
}

impl TraceReport {
    /// Replays a JSONL trace from `reader`.
    pub fn from_reader(reader: impl BufRead) -> std::io::Result<TraceReport> {
        let mut report = TraceReport::default();
        let mut open: Option<LiveSection> = None;
        for line in reader.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = serde_json::from_str::<Value>(line) else {
                report.parse_errors += 1;
                continue;
            };
            let Some(kind) = get_str(&v, "ev").map(str::to_string) else {
                report.parse_errors += 1;
                continue;
            };
            report.total_events += 1;
            if kind == "run_start" {
                // An unterminated previous run still gets reported.
                if let Some(live) = open.take() {
                    report.runs.push(live.close());
                }
                let mut live = LiveSection::default();
                live.section.engine = get_str(&v, "engine").unwrap_or("?").to_string();
                live.section.algorithm = get_str(&v, "algorithm").unwrap_or("?").to_string();
                open = Some(live);
                continue;
            }
            let Some(live) = open.as_mut() else {
                report.unattributed += 1;
                continue;
            };
            if !replay_event(live, &kind, &v) {
                report.parse_errors += 1;
            }
            if kind == "run_end" {
                if let Some(live) = open.take() {
                    report.runs.push(live.close());
                }
            }
        }
        if let Some(live) = open.take() {
            report.runs.push(live.close());
        }
        Ok(report)
    }

    /// Replays the trace file at `path`.
    pub fn from_path(path: impl AsRef<std::path::Path>) -> std::io::Result<TraceReport> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(std::io::BufReader::new(file))
    }

    /// Renders the whole report as human-readable text. `top_n` bounds
    /// the hottest-blocks and decision-log listings per run.
    pub fn render_text(&self, top_n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace replay: {} events, {} runs, {} unattributed, {} parse errors\n",
            self.total_events,
            self.runs.len(),
            self.unattributed,
            self.parse_errors
        ));
        for (idx, run) in self.runs.iter().enumerate() {
            render_run(&mut out, idx, run, top_n);
        }
        out
    }
}

/// Folds one event into the open section. Returns `false` when a
/// required field is missing (counted as a parse error; the event is
/// otherwise skipped so one bad line never poisons the replay).
fn replay_event(live: &mut LiveSection, kind: &str, v: &Value) -> bool {
    let s = &mut live.section;
    match kind {
        "run_end" => {
            let Some(iterations) = get_u64(v, "iterations") else {
                return false;
            };
            s.run_end_iterations = u32::try_from(iterations).unwrap_or(u32::MAX);
        }
        "iteration_start" => {}
        "iteration_end" => {
            let (Some(iteration), Some(frontier), Some(bytes_read)) = (
                get_u64(v, "iteration"),
                get_u64(v, "frontier"),
                get_u64(v, "bytes_read"),
            ) else {
                return false;
            };
            let iteration = u32::try_from(iteration).unwrap_or(u32::MAX);
            let row = IterRow {
                iteration,
                model: get_str(v, "model").unwrap_or("?").to_string(),
                frontier,
                bytes_read,
                scatter_us: get_u64(v, "scatter_us").unwrap_or(0),
                apply_us: get_u64(v, "apply_us").unwrap_or(0),
                io_wait_us: get_u64(v, "io_wait_us").unwrap_or(0),
            };
            s.counters.iterations = s.counters.iterations.max(iteration);
            s.counters.bytes_read += bytes_read;
            s.iterations.push(row);
        }
        "block_load" => {
            let (Some(i), Some(j), Some(bytes)) =
                (get_u64(v, "i"), get_u64(v, "j"), get_u64(v, "bytes"))
            else {
                return false;
            };
            let key = (
                u32::try_from(i).unwrap_or(u32::MAX),
                u32::try_from(j).unwrap_or(u32::MAX),
            );
            let act = s.blocks.entry(key).or_default();
            act.loads += 1;
            act.bytes += bytes;
            live.io_sizes.record(bytes);
            if get_bool(v, "seq").unwrap_or(true) {
                s.seq_loads += 1;
            } else {
                s.rand_loads += 1;
            }
        }
        "scheduler_decision" => {
            let (Some(iteration), Some(s_seq), Some(s_ran), Some(cost_full), Some(cost_on_demand)) = (
                get_u64(v, "iteration"),
                get_u64(v, "s_seq"),
                get_u64(v, "s_ran"),
                get_f64(v, "cost_full"),
                get_f64(v, "cost_on_demand"),
            ) else {
                return false;
            };
            s.decisions.push(DecisionRow {
                iteration: u32::try_from(iteration).unwrap_or(u32::MAX),
                s_seq,
                s_ran,
                cost_full,
                cost_on_demand,
                chosen: get_str(v, "chosen").unwrap_or("?").to_string(),
            });
        }
        "sciu_pass" | "fciu_pass" => {
            let Some(edges) = get_u64(v, "edges_served") else {
                return false;
            };
            s.counters.cross_iter_edges += edges;
        }
        "buffer_hit" => {
            let Some(bytes) = get_u64(v, "bytes") else {
                return false;
            };
            s.counters.buffer_hits += 1;
            s.counters.buffer_hit_bytes += bytes;
        }
        "buffer_eviction" => {
            let Some(bytes) = get_u64(v, "bytes") else {
                return false;
            };
            s.evictions.0 += 1;
            s.evictions.1 += bytes;
        }
        "value_flush" => {
            let (Some(bytes), Some(write)) = (get_u64(v, "bytes"), get_bool(v, "write")) else {
                return false;
            };
            let slot = if write {
                &mut s.value_writes
            } else {
                &mut s.value_reads
            };
            slot.0 += 1;
            slot.1 += bytes;
        }
        "prefetch_issued" => {
            let Some(bytes) = get_u64(v, "bytes") else {
                return false;
            };
            s.prefetch_issued.0 += 1;
            s.prefetch_issued.1 += bytes;
        }
        "prefetch_hit" => {
            let Some(bytes) = get_u64(v, "bytes") else {
                return false;
            };
            s.counters.prefetch_hits += 1;
            s.prefetch_hit_bytes += bytes;
        }
        "prefetch_stall" => {
            let Some(wait_us) = get_u64(v, "wait_us") else {
                return false;
            };
            s.counters.prefetch_misses += 1;
            s.prefetch_stall_us += wait_us;
            live.stalls.record(wait_us);
        }
        "ckpt_written" | "ckpt_restored" => {
            let Some(bytes) = get_u64(v, "bytes") else {
                return false;
            };
            let slot = if kind == "ckpt_written" {
                &mut s.ckpt_written
            } else {
                &mut s.ckpt_restored
            };
            slot.0 += 1;
            slot.1 += bytes;
        }
        "io_retry" => s.io_retries += 1,
        "io_gave_up" => s.io_gave_up += 1,
        "checksum_ok" => {
            let Some(bytes) = get_u64(v, "bytes") else {
                return false;
            };
            s.verify_ok.0 += 1;
            s.verify_ok.1 += bytes;
        }
        "corruption_detected" => s.corruptions += 1,
        "block_repaired" => s.repairs += 1,
        // Harness-level events inside a run span are fine to ignore.
        _ => {}
    }
    true
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn render_hist(out: &mut String, label: &str, h: &HistogramSnapshot) {
    if h.count == 0 {
        out.push_str(&format!("  {label}: (empty)\n"));
        return;
    }
    let fmt_opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    out.push_str(&format!(
        "  {label}: n={} mean={:.1} p50<={} p95<={} p99<={}\n",
        h.count,
        h.mean().unwrap_or(0.0),
        fmt_opt(h.p50()),
        fmt_opt(h.p95()),
        fmt_opt(h.p99()),
    ));
    for (upper, n) in &h.buckets {
        out.push_str(&format!(
            "    <= {:>12}  {:>8}  {:>5.1}%\n",
            upper,
            n,
            pct(*n, h.count)
        ));
    }
}

fn render_run(out: &mut String, idx: usize, run: &RunSection, top_n: usize) {
    let (scatter_us, apply_us, io_wait_us) = run.phase_totals_us();
    let total_us = scatter_us + apply_us + io_wait_us;
    out.push_str(&format!(
        "\n=== run {} · engine={} algorithm={} iterations={} ===\n",
        idx, run.engine, run.algorithm, run.counters.iterations
    ));
    out.push_str("phase breakdown (traced wall time):\n");
    out.push_str(&format!(
        "  scatter {:>10}us ({:>5.1}%)   apply {:>10}us ({:>5.1}%)   io wait {:>10}us ({:>5.1}%)\n",
        scatter_us,
        pct(scatter_us, total_us),
        apply_us,
        pct(apply_us, total_us),
        io_wait_us,
        pct(io_wait_us, total_us),
    ));
    out.push_str(&format!(
        "io: {} bytes read across iterations; {} seq loads, {} on-demand loads\n",
        run.counters.bytes_read, run.seq_loads, run.rand_loads
    ));
    render_hist(out, "block load size (bytes)", &run.io_size_hist);
    out.push_str(&format!(
        "values: {} read-ins ({} B), {} write-backs ({} B)\n",
        run.value_reads.0, run.value_reads.1, run.value_writes.0, run.value_writes.1
    ));
    out.push_str(&format!(
        "buffer: {} hits ({} B avoided), {} evictions ({} B)\n",
        run.counters.buffer_hits, run.counters.buffer_hit_bytes, run.evictions.0, run.evictions.1
    ));
    let pf_total = run.counters.prefetch_hits + run.counters.prefetch_misses;
    if pf_total > 0 {
        out.push_str(&format!(
            "prefetch: {} issued ({} B); {} hits / {} stalls ({:.1}% hit rate), {}us stalled\n",
            run.prefetch_issued.0,
            run.prefetch_issued.1,
            run.counters.prefetch_hits,
            run.counters.prefetch_misses,
            pct(run.counters.prefetch_hits, pf_total),
            run.prefetch_stall_us,
        ));
        render_hist(out, "stall wait (us)", &run.stall_hist);
    } else {
        out.push_str("prefetch: inactive\n");
    }
    if run.counters.cross_iter_edges > 0 {
        out.push_str(&format!(
            "cross-iteration: {} edges served ahead of their iteration\n",
            run.counters.cross_iter_edges
        ));
    }
    if run.ckpt_written.0 + run.ckpt_restored.0 + run.io_retries + run.io_gave_up > 0 {
        out.push_str(&format!(
            "recovery: {} checkpoints ({} B), {} restores, {} retries, {} gave up\n",
            run.ckpt_written.0,
            run.ckpt_written.1,
            run.ckpt_restored.0,
            run.io_retries,
            run.io_gave_up
        ));
    }
    if run.verify_ok.0 + run.corruptions + run.repairs > 0 {
        out.push_str(&format!(
            "integrity: {} verified objects ({} B), {} corruptions, {} repaired\n",
            run.verify_ok.0, run.verify_ok.1, run.corruptions, run.repairs
        ));
    }
    let hottest = run.hottest_blocks(top_n);
    if !hottest.is_empty() {
        out.push_str(&format!("hottest sub-blocks (top {}):\n", hottest.len()));
        for ((i, j), act) in hottest {
            out.push_str(&format!(
                "  ({i:>3},{j:>3})  {:>10} B in {:>6} loads\n",
                act.bytes, act.loads
            ));
        }
    }
    if !run.decisions.is_empty() {
        out.push_str(&format!(
            "scheduler decisions ({} total, showing up to {top_n}):\n",
            run.decisions.len()
        ));
        for d in run.decisions.iter().take(top_n) {
            out.push_str(&format!("  {}\n", d.explain()));
        }
    }
    out.push_str("per-iteration detail:\n");
    out.push_str("  iter       model   frontier      read B  scatter us    apply us  io wait us\n");
    for it in &run.iterations {
        out.push_str(&format!(
            "  {:>4}  {:>10}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            it.iteration,
            it.model,
            it.frontier,
            it.bytes_read,
            it.scatter_us,
            it.apply_us,
            it.io_wait_us
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_trace::{AccessModel, JsonlWriter, TraceEvent, TraceSink};

    fn write_trace(events: &[TraceEvent]) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::new();
        for e in events {
            buf.extend_from_slice(serde_json::to_string(e).unwrap().as_bytes());
            buf.push(b'\n');
        }
        buf
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                engine: "graphsd",
                algorithm: "PR".to_string(),
            },
            TraceEvent::SchedulerDecision {
                iteration: 1,
                s_seq: 10,
                s_ran: 4,
                cost_full: 1.5,
                cost_on_demand: 0.25,
                chosen: AccessModel::OnDemand,
            },
            TraceEvent::BlockLoad {
                i: 0,
                j: 1,
                bytes: 4096,
                seq: false,
            },
            TraceEvent::BlockLoad {
                i: 0,
                j: 1,
                bytes: 4096,
                seq: true,
            },
            TraceEvent::BlockLoad {
                i: 1,
                j: 1,
                bytes: 100,
                seq: true,
            },
            TraceEvent::BufferHit {
                i: 0,
                j: 1,
                bytes: 4096,
            },
            TraceEvent::PrefetchIssued {
                i: 1,
                j: 1,
                bytes: 100,
            },
            TraceEvent::PrefetchHit {
                i: 1,
                j: 1,
                bytes: 100,
            },
            TraceEvent::PrefetchStall {
                i: 0,
                j: 1,
                wait_us: 250,
            },
            TraceEvent::SciuPass {
                iteration: 1,
                edges_served: 77,
            },
            TraceEvent::ValueFlush {
                bytes: 800,
                write: false,
            },
            TraceEvent::ValueFlush {
                bytes: 800,
                write: true,
            },
            TraceEvent::IterationEnd {
                iteration: 1,
                model: AccessModel::OnDemand,
                frontier: 14,
                bytes_read: 9092,
                scatter_us: 120,
                apply_us: 60,
                io_wait_us: 300,
            },
            TraceEvent::IterationEnd {
                iteration: 2,
                model: AccessModel::Full,
                frontier: 3,
                bytes_read: 100,
                scatter_us: 20,
                apply_us: 10,
                io_wait_us: 30,
            },
            TraceEvent::RunEnd {
                engine: "graphsd",
                iterations: 2,
            },
        ]
    }

    #[test]
    fn replay_rebuilds_run_counters() {
        let buf = write_trace(&sample_events());
        let report = TraceReport::from_reader(buf.as_slice()).unwrap();
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.parse_errors, 0);
        assert_eq!(report.unattributed, 0);
        let run = &report.runs[0];
        assert_eq!(run.engine, "graphsd");
        assert_eq!(run.algorithm, "PR");
        assert_eq!(run.run_end_iterations, 2);
        assert_eq!(
            run.replayed_counters(),
            ReplayedCounters {
                iterations: 2,
                bytes_read: 9192,
                buffer_hits: 1,
                buffer_hit_bytes: 4096,
                prefetch_hits: 1,
                prefetch_misses: 1,
                cross_iter_edges: 77,
            }
        );
        assert_eq!(run.seq_loads, 2);
        assert_eq!(run.rand_loads, 1);
        assert_eq!(run.value_reads, (1, 800));
        assert_eq!(run.value_writes, (1, 800));
        assert_eq!(run.prefetch_issued, (1, 100));
        assert_eq!(run.prefetch_stall_us, 250);
        assert_eq!(run.phase_totals_us(), (140, 70, 330));
        // Hottest block ranking: (0,1) carries 8192 B over 2 loads.
        let hottest = run.hottest_blocks(1);
        assert_eq!(hottest.len(), 1);
        assert_eq!(hottest[0].0, (0, 1));
        assert_eq!(
            hottest[0].1,
            BlockActivity {
                loads: 2,
                bytes: 8192
            }
        );
        // Load-size histogram: 2×4096 (le 4095? no — 4096 → le 8191) + 1×100.
        assert_eq!(run.io_size_hist.count, 3);
    }

    #[test]
    fn decision_explanations_cite_cost_terms() {
        let buf = write_trace(&sample_events());
        let report = TraceReport::from_reader(buf.as_slice()).unwrap();
        let d = &report.runs[0].decisions[0];
        let text = d.explain();
        assert!(text.contains("on-demand"));
        assert!(text.contains("C_r 0.2500s"));
        assert!(text.contains("C_s 1.5000s"));
        assert!(text.contains("6.0x cheaper"));
        assert!(text.contains("10 clustered / 4 scattered"));
        let full = DecisionRow {
            iteration: 2,
            s_seq: 500,
            s_ran: 900,
            cost_full: 0.5,
            cost_on_demand: 2.0,
            chosen: "full".to_string(),
        };
        assert!(full.explain().contains("chose full streaming"));
    }

    #[test]
    fn matches_run_stats_detects_drift() {
        let buf = write_trace(&sample_events());
        let report = TraceReport::from_reader(buf.as_slice()).unwrap();
        let run = &report.runs[0];
        let mut stats = RunStats::new("graphsd", "PR");
        stats.iterations = 2;
        stats.buffer_hits = 1;
        stats.buffer_hit_bytes = 4096;
        stats.prefetch_hits = 1;
        stats.prefetch_misses = 1;
        stats.cross_iter_edges = 77;
        // per_iteration empty → expected per-iteration read sum is 0, and
        // the replay saw 9192: that must be flagged.
        let err = run.matches_run_stats(&stats).unwrap_err();
        assert!(err.contains("bytes_read"));
        // With matching per-iteration totals everything agrees.
        use gsd_io::IoStatsSnapshot;
        use gsd_runtime::{IoAccessModel, IterationStats};
        use std::time::Duration;
        for (n, bytes) in [(1u32, 9092u64), (2, 100)] {
            stats.push_iteration(IterationStats {
                iteration: n,
                model: IoAccessModel::Full,
                frontier: 1,
                io: IoStatsSnapshot {
                    seq_read_bytes: bytes,
                    ..Default::default()
                },
                io_time: Duration::ZERO,
                compute_time: Duration::ZERO,
                scatter_time: Duration::ZERO,
                apply_time: Duration::ZERO,
                io_wait_time: Duration::ZERO,
                prefetch_stall_time: Duration::ZERO,
                cross_iteration: false,
            });
        }
        run.matches_run_stats(&stats).unwrap();
        // A drifted counter is reported by name.
        stats.buffer_hits = 99;
        assert!(run
            .matches_run_stats(&stats)
            .unwrap_err()
            .contains("buffer_hits"));
    }

    #[test]
    fn malformed_and_unattributed_lines_are_counted() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"not json at all\n");
        buf.extend_from_slice(b"{\"no_ev_field\":1}\n");
        // An event before any run_start.
        buf.extend_from_slice(b"{\"ev\":\"buffer_hit\",\"i\":0,\"j\":0,\"bytes\":1}\n");
        buf.extend_from_slice(b"{\"ev\":\"run_start\",\"engine\":\"hus\",\"algorithm\":\"CC\"}\n");
        // A well-tagged event missing a required field.
        buf.extend_from_slice(b"{\"ev\":\"buffer_hit\",\"i\":0,\"j\":0}\n");
        let report = TraceReport::from_reader(buf.as_slice()).unwrap();
        assert_eq!(report.parse_errors, 3);
        assert_eq!(report.unattributed, 1);
        // The truncated run (no run_end) is still reported.
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].engine, "hus");
        assert_eq!(report.runs[0].counters.buffer_hits, 0);
    }

    #[test]
    fn render_text_summarizes_every_section() {
        let buf = write_trace(&sample_events());
        let report = TraceReport::from_reader(buf.as_slice()).unwrap();
        let text = report.render_text(5);
        assert!(text.contains("engine=graphsd algorithm=PR iterations=2"));
        assert!(text.contains("phase breakdown"));
        assert!(text.contains("hottest sub-blocks"));
        assert!(text.contains("scheduler decisions"));
        assert!(text.contains("block load size"));
        assert!(text.contains("1 hits / 1 stalls (50.0% hit rate)"));
    }

    #[test]
    fn jsonl_writer_output_replays_cleanly() {
        // End-to-end through the real sink: what JsonlWriter writes,
        // TraceReport must read.
        let path =
            std::env::temp_dir().join(format!("gsd_report_roundtrip_{}.jsonl", std::process::id()));
        {
            let sink = JsonlWriter::create(&path).unwrap();
            for e in sample_events() {
                sink.emit(&e);
            }
        }
        let report = TraceReport::from_path(&path).unwrap();
        assert_eq!(report.parse_errors, 0);
        assert_eq!(report.runs.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
