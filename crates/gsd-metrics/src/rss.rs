//! Peak resident-set-size sampling.
//!
//! Linux exposes the process high-water mark as `VmHWM` in
//! `/proc/self/status`; elsewhere the file is absent and the probe
//! returns `None`. Callers treat `None` as "not measured" (serialized
//! as 0 in `BENCH_*.json`), never as an error — memory footprint is an
//! informational column, not a gated one.

/// Peak resident set size of the current process in bytes, or `None`
/// where `/proc/self/status` (or its `VmHWM` line) is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_format() {
        let status = "Name:\tgsd\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t4\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tgsd\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_probe_reports_nonzero() {
        let rss = peak_rss_bytes().unwrap();
        assert!(rss > 0);
    }
}
