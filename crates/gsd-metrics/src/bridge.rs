//! Bridging the trace stream into the metrics registry.
//!
//! [`MetricsSink`] is a `TraceSink`: attach it (usually inside a
//! `FanoutSink`) and every event a run emits is folded into a
//! [`MetricsRegistry`] as labeled counters, gauges and histograms. With
//! an output file configured it also writes periodic exposition
//! snapshots during long runs (every N iterations) and a final one on
//! `flush()`, so `--metrics-out` gives a scrape-able view of a run in
//! flight, not just a post-mortem.
//!
//! The sink is strictly read-only with respect to the run: it never
//! touches engine state or storage, so results and accounted I/O are
//! bit-identical with or without it.

use crate::expo::ExpoFormat;
use crate::registry::{MetricsRegistry, SeriesKey};
use gsd_runtime::RunStats;
use gsd_trace::{CounterRegistry, TraceEvent, TraceSink};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Folds one trace event into `reg` as counters/gauges/histograms.
///
/// Every event increments `gsd_trace_events_total{ev=...}`; most also
/// update a semantic series (see the match arms).
pub fn record_event(reg: &MetricsRegistry, event: &TraceEvent) {
    reg.inc(
        SeriesKey::with_labels("gsd_trace_events_total", &[("ev", event.kind())]),
        1,
    );
    match event {
        TraceEvent::RunStart { engine, algorithm } => {
            reg.set_gauge(
                SeriesKey::with_labels(
                    "gsd_run_info",
                    &[("engine", engine), ("algorithm", algorithm)],
                ),
                1.0,
            );
        }
        TraceEvent::RunEnd { iterations, .. } => {
            reg.set_gauge(SeriesKey::plain("gsd_iterations"), f64::from(*iterations));
        }
        TraceEvent::IterationStart { .. } => {}
        TraceEvent::IterationEnd {
            model,
            frontier,
            bytes_read,
            scatter_us,
            apply_us,
            io_wait_us,
            ..
        } => {
            reg.inc(SeriesKey::plain("gsd_iterations_total"), 1);
            reg.inc(
                SeriesKey::with_labels("gsd_iteration_model_total", &[("model", model.as_str())]),
                1,
            );
            reg.inc(
                SeriesKey::plain("gsd_iteration_read_bytes_total"),
                *bytes_read,
            );
            reg.set_gauge(SeriesKey::plain("gsd_frontier"), *frontier as f64);
            reg.observe(SeriesKey::plain("gsd_scatter_us"), *scatter_us);
            reg.observe(SeriesKey::plain("gsd_apply_us"), *apply_us);
            reg.observe(SeriesKey::plain("gsd_io_wait_us"), *io_wait_us);
        }
        TraceEvent::BlockLoad { bytes, seq, .. } => {
            let seq = if *seq { "true" } else { "false" };
            reg.inc(
                SeriesKey::with_labels("gsd_block_loads_total", &[("seq", seq)]),
                1,
            );
            reg.inc(
                SeriesKey::with_labels("gsd_block_load_bytes_total", &[("seq", seq)]),
                *bytes,
            );
            reg.observe(SeriesKey::plain("gsd_block_load_bytes"), *bytes);
        }
        TraceEvent::SchedulerDecision { chosen, .. } => {
            reg.inc(
                SeriesKey::with_labels(
                    "gsd_scheduler_decisions_total",
                    &[("chosen", chosen.as_str())],
                ),
                1,
            );
        }
        TraceEvent::SciuPass { edges_served, .. } => {
            reg.inc(
                SeriesKey::with_labels("gsd_cross_iter_passes_total", &[("kind", "sciu")]),
                1,
            );
            reg.inc(
                SeriesKey::plain("gsd_cross_iter_edges_total"),
                *edges_served,
            );
        }
        TraceEvent::FciuPass { edges_served, .. } => {
            reg.inc(
                SeriesKey::with_labels("gsd_cross_iter_passes_total", &[("kind", "fciu")]),
                1,
            );
            reg.inc(
                SeriesKey::plain("gsd_cross_iter_edges_total"),
                *edges_served,
            );
        }
        TraceEvent::BufferHit { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_buffer_hits_total"), 1);
            reg.inc(SeriesKey::plain("gsd_buffer_hit_bytes_total"), *bytes);
        }
        TraceEvent::BufferEviction { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_buffer_evictions_total"), 1);
            reg.inc(SeriesKey::plain("gsd_buffer_evicted_bytes_total"), *bytes);
        }
        TraceEvent::ValueFlush { bytes, write } => {
            let dir = if *write { "write" } else { "read" };
            reg.inc(
                SeriesKey::with_labels("gsd_value_flushes_total", &[("dir", dir)]),
                1,
            );
            reg.inc(
                SeriesKey::with_labels("gsd_value_flush_bytes_total", &[("dir", dir)]),
                *bytes,
            );
        }
        TraceEvent::PrefetchIssued { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_prefetch_issued_total"), 1);
            reg.inc(SeriesKey::plain("gsd_prefetch_issued_bytes_total"), *bytes);
        }
        TraceEvent::PrefetchHit { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_prefetch_hits_total"), 1);
            reg.inc(SeriesKey::plain("gsd_prefetch_hit_bytes_total"), *bytes);
        }
        TraceEvent::PrefetchStall { wait_us, .. } => {
            reg.inc(SeriesKey::plain("gsd_prefetch_stalls_total"), 1);
            reg.observe(SeriesKey::plain("gsd_prefetch_stall_us"), *wait_us);
        }
        TraceEvent::CkptWritten { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_ckpt_written_total"), 1);
            reg.inc(SeriesKey::plain("gsd_ckpt_written_bytes_total"), *bytes);
        }
        TraceEvent::CkptRestored { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_ckpt_restored_total"), 1);
            reg.inc(SeriesKey::plain("gsd_ckpt_restored_bytes_total"), *bytes);
        }
        TraceEvent::IoRetry { op, .. } => {
            reg.inc(
                SeriesKey::with_labels("gsd_io_retries_total", &[("op", op)]),
                1,
            );
        }
        TraceEvent::IoGaveUp { op, .. } => {
            reg.inc(
                SeriesKey::with_labels("gsd_io_gave_up_total", &[("op", op)]),
                1,
            );
        }
        TraceEvent::ChecksumOk { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_verify_ok_total"), 1);
            reg.inc(SeriesKey::plain("gsd_verify_bytes_total"), *bytes);
        }
        TraceEvent::CorruptionDetected { .. } => {
            reg.inc(SeriesKey::plain("gsd_corruption_detected_total"), 1);
        }
        TraceEvent::BlockRepaired { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_blocks_repaired_total"), 1);
            reg.inc(SeriesKey::plain("gsd_blocks_repaired_bytes_total"), *bytes);
        }
        TraceEvent::BenchRepeat {
            system,
            algorithm,
            wall_us,
            ..
        } => {
            reg.observe(
                SeriesKey::with_labels(
                    "gsd_bench_wall_us",
                    &[("system", system), ("algorithm", algorithm)],
                ),
                *wall_us,
            );
        }
        TraceEvent::MetricsFlush { series, bytes } => {
            reg.inc(SeriesKey::plain("gsd_metrics_flushes_total"), 1);
            reg.inc(SeriesKey::plain("gsd_metrics_flush_bytes_total"), *bytes);
            reg.set_gauge(SeriesKey::plain("gsd_metrics_series"), *series as f64);
        }
        TraceEvent::ServeStarted { vertices, p } => {
            reg.set_gauge(SeriesKey::plain("gsd_serve_up"), 1.0);
            reg.set_gauge(SeriesKey::plain("gsd_serve_vertices"), *vertices as f64);
            reg.set_gauge(SeriesKey::plain("gsd_serve_partitions"), *p as f64);
        }
        TraceEvent::QueryAccepted { op, .. } => {
            reg.inc(
                SeriesKey::with_labels("gsd_serve_queries_total", &[("op", op)]),
                1,
            );
        }
        TraceEvent::QueryCompleted {
            op,
            cache_hits,
            cache_misses,
            bytes_read,
            ..
        } => {
            reg.inc(
                SeriesKey::with_labels("gsd_serve_queries_completed_total", &[("op", op)]),
                1,
            );
            reg.inc(SeriesKey::plain("gsd_serve_cache_hits_total"), *cache_hits);
            reg.inc(
                SeriesKey::plain("gsd_serve_cache_misses_total"),
                *cache_misses,
            );
            reg.inc(
                SeriesKey::plain("gsd_serve_query_read_bytes_total"),
                *bytes_read,
            );
        }
        TraceEvent::CacheAdmit { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_serve_cache_admits_total"), 1);
            reg.inc(
                SeriesKey::plain("gsd_serve_cache_admit_bytes_total"),
                *bytes,
            );
        }
        TraceEvent::CacheEvict { bytes, .. } => {
            reg.inc(SeriesKey::plain("gsd_serve_cache_evicts_total"), 1);
            reg.inc(
                SeriesKey::plain("gsd_serve_cache_evict_bytes_total"),
                *bytes,
            );
        }
        TraceEvent::DeltaApplied {
            epoch,
            inserts,
            deletes,
            segments,
            bytes,
        } => {
            reg.inc(SeriesKey::plain("gsd_delta_batches_total"), 1);
            reg.inc(SeriesKey::plain("gsd_delta_inserts_total"), *inserts);
            reg.inc(SeriesKey::plain("gsd_delta_deletes_total"), *deletes);
            reg.inc(SeriesKey::plain("gsd_delta_segments_total"), *segments);
            reg.inc(SeriesKey::plain("gsd_delta_segment_bytes_total"), *bytes);
            reg.set_gauge(SeriesKey::plain("gsd_delta_epoch"), *epoch as f64);
        }
        TraceEvent::CompactionStarted {
            segments, bytes, ..
        } => {
            reg.inc(SeriesKey::plain("gsd_compactions_total"), 1);
            reg.set_gauge(
                SeriesKey::plain("gsd_compaction_input_segments"),
                *segments as f64,
            );
            reg.set_gauge(
                SeriesKey::plain("gsd_compaction_input_bytes"),
                *bytes as f64,
            );
        }
        TraceEvent::CompactionFinished {
            blocks_rewritten,
            bytes,
            ..
        } => {
            reg.inc(
                SeriesKey::plain("gsd_compaction_blocks_rewritten_total"),
                *blocks_rewritten,
            );
            reg.inc(
                SeriesKey::plain("gsd_compaction_rewritten_bytes_total"),
                *bytes,
            );
        }
        TraceEvent::IncrementalSeeded { seeds, resets } => {
            reg.inc(SeriesKey::plain("gsd_incremental_runs_total"), 1);
            reg.inc(SeriesKey::plain("gsd_incremental_seeds_total"), *seeds);
            reg.inc(SeriesKey::plain("gsd_incremental_resets_total"), *resets);
        }
    }
}

/// Copies a run's final [`RunStats`] into `reg` as gauges, labeled by
/// engine and algorithm. Called once after a run completes so the last
/// exposition snapshot carries the authoritative totals.
pub fn ingest_run_stats(reg: &MetricsRegistry, stats: &RunStats) {
    let labels: &[(&str, &str)] = &[
        ("engine", stats.engine.as_str()),
        ("algorithm", stats.algorithm.as_str()),
    ];
    let gauge = |name: &str, v: f64| {
        reg.set_gauge(SeriesKey::with_labels(name, labels), v);
    };
    gauge("gsd_run_iterations", f64::from(stats.iterations));
    gauge("gsd_run_compute_seconds", stats.compute_time.as_secs_f64());
    gauge("gsd_run_io_seconds", stats.io_time.as_secs_f64());
    gauge(
        "gsd_run_scheduler_seconds",
        stats.scheduler_time.as_secs_f64(),
    );
    gauge(
        "gsd_run_prefetch_stall_seconds",
        stats.prefetch_stall_time.as_secs_f64(),
    );
    gauge("gsd_run_io_fraction", stats.io_fraction());
    gauge("gsd_run_read_bytes", stats.io.read_bytes() as f64);
    gauge("gsd_run_written_bytes", stats.io.write_bytes as f64);
    gauge("gsd_run_cross_iter_edges", stats.cross_iter_edges as f64);
    gauge("gsd_run_buffer_hits", stats.buffer_hits as f64);
    gauge("gsd_run_buffer_hit_bytes", stats.buffer_hit_bytes as f64);
    gauge("gsd_run_prefetch_hits", stats.prefetch_hits as f64);
    gauge("gsd_run_prefetch_misses", stats.prefetch_misses as f64);
    gauge("gsd_run_verify_bytes", stats.verify_bytes as f64);
    gauge("gsd_run_corrupt_blocks", stats.corrupt_blocks as f64);
    gauge("gsd_run_repaired_blocks", stats.repaired_blocks as f64);
}

/// Imports every histogram of a storage backend's [`CounterRegistry`]
/// into `reg` under a `gsd_storage_` prefix, so request-size and latency
/// distributions appear next to the trace-derived series.
pub fn ingest_counter_registry(reg: &MetricsRegistry, counters: &CounterRegistry) {
    for (name, snapshot) in counters.snapshot() {
        reg.import_histogram(SeriesKey::plain(format!("gsd_storage_{name}")), snapshot);
    }
}

struct SnapshotOutput {
    path: PathBuf,
    format: ExpoFormat,
    /// Write a snapshot every `every` finished iterations (0 = only on
    /// explicit flush).
    every: u64,
    iterations: AtomicU64,
}

/// A `TraceSink` that aggregates events into a [`MetricsRegistry`] and
/// (optionally) writes exposition snapshots to a file.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    output: Option<SnapshotOutput>,
    write_errors: AtomicU64,
}

impl MetricsSink {
    /// A sink aggregating into a fresh registry, with no file output.
    pub fn new() -> Self {
        MetricsSink {
            registry: Arc::new(MetricsRegistry::new()),
            output: None,
            write_errors: AtomicU64::new(0),
        }
    }

    /// A sink that also writes exposition snapshots to `path` — every
    /// `every` finished iterations during the run (0 disables periodic
    /// writes) and once on `flush()`. The format follows the path's
    /// extension ([`ExpoFormat::from_path`]).
    pub fn with_output(path: impl AsRef<Path>, every: u64) -> Self {
        let path = path.as_ref().to_path_buf();
        MetricsSink {
            registry: Arc::new(MetricsRegistry::new()),
            output: Some(SnapshotOutput {
                format: ExpoFormat::from_path(&path),
                path,
                every,
                iterations: AtomicU64::new(0),
            }),
            write_errors: AtomicU64::new(0),
        }
    }

    /// The registry this sink aggregates into.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        self.registry.clone()
    }

    /// Snapshot file writes that failed so far (exposition must never
    /// take down the run, so errors are counted, not propagated).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Renders the current registry state and writes it to the configured
    /// output file. No-op without an output. The registry lock is released
    /// before any file I/O (the snapshot is an owned copy).
    pub fn write_snapshot(&self) -> std::io::Result<()> {
        let Some(out) = &self.output else {
            return Ok(());
        };
        let snap = self.registry.snapshot();
        let rendered = snap.render(out.format);
        let result = std::fs::write(&out.path, rendered.as_bytes());
        match &result {
            Ok(()) => {
                // Self-observe the flush so the *next* snapshot records it.
                record_event(
                    &self.registry,
                    &TraceEvent::MetricsFlush {
                        series: snap.series_count(),
                        bytes: rendered.len() as u64,
                    },
                );
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for MetricsSink {
    fn emit(&self, event: &TraceEvent) {
        record_event(&self.registry, event);
        if let (Some(out), TraceEvent::IterationEnd { .. }) = (&self.output, event) {
            if out.every > 0 {
                let n = out.iterations.fetch_add(1, Ordering::Relaxed) + 1;
                if n % out.every == 0 {
                    let _ = self.write_snapshot();
                }
            }
        }
    }

    fn flush(&self) {
        let _ = self.write_snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_trace::AccessModel;

    fn iteration_end(n: u32) -> TraceEvent {
        TraceEvent::IterationEnd {
            iteration: n,
            model: AccessModel::Full,
            frontier: 8,
            bytes_read: 1024,
            scatter_us: 10,
            apply_us: 5,
            io_wait_us: 3,
        }
    }

    #[test]
    fn events_fold_into_labeled_series() {
        let sink = MetricsSink::new();
        let reg = sink.registry();
        sink.emit(&TraceEvent::RunStart {
            engine: "graphsd",
            algorithm: "PR".to_string(),
        });
        sink.emit(&iteration_end(1));
        sink.emit(&iteration_end(2));
        sink.emit(&TraceEvent::BlockLoad {
            i: 0,
            j: 1,
            bytes: 4096,
            seq: true,
        });
        sink.emit(&TraceEvent::BufferHit {
            i: 0,
            j: 1,
            bytes: 4096,
        });
        assert_eq!(
            reg.counter_value(&SeriesKey::plain("gsd_iterations_total")),
            2
        );
        assert_eq!(
            reg.counter_value(&SeriesKey::plain("gsd_iteration_read_bytes_total")),
            2048
        );
        assert_eq!(
            reg.counter_value(&SeriesKey::with_labels(
                "gsd_block_loads_total",
                &[("seq", "true")]
            )),
            1
        );
        assert_eq!(
            reg.counter_value(&SeriesKey::plain("gsd_buffer_hit_bytes_total")),
            4096
        );
        assert_eq!(
            reg.counter_value(&SeriesKey::with_labels(
                "gsd_trace_events_total",
                &[("ev", "iteration_end")]
            )),
            2
        );
        let snap = reg.snapshot();
        let scatter = snap
            .histograms
            .iter()
            .find(|(k, _)| k.name == "gsd_scatter_us")
            .map(|(_, h)| h.count);
        assert_eq!(scatter, Some(2));
    }

    #[test]
    fn periodic_snapshots_write_every_n_iterations() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gsd_metrics_periodic_{}.prom", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sink = MetricsSink::with_output(&path, 2);
        sink.emit(&iteration_end(1));
        assert!(!path.exists(), "no snapshot before the period elapses");
        sink.emit(&iteration_end(2));
        assert!(path.exists(), "snapshot written at iteration 2");
        let text = std::fs::read_to_string(&path).unwrap();
        crate::expo::validate_prometheus(&text).unwrap();
        // The flush self-observation lands in the registry for next time.
        assert_eq!(
            sink.registry()
                .counter_value(&SeriesKey::plain("gsd_metrics_flushes_total")),
            1
        );
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("gsd_metrics_flushes_total 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_stats_ingest_sets_labeled_gauges() {
        let reg = MetricsRegistry::new();
        let mut stats = RunStats::new("graphsd", "PR");
        stats.iterations = 7;
        stats.buffer_hits = 3;
        ingest_run_stats(&reg, &stats);
        let snap = reg.snapshot();
        let key = SeriesKey::with_labels(
            "gsd_run_iterations",
            &[("engine", "graphsd"), ("algorithm", "PR")],
        );
        let v = snap.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        assert_eq!(v, Some(7.0));
    }

    #[test]
    fn counter_registry_histograms_import_with_prefix() {
        let reg = MetricsRegistry::new();
        let counters = CounterRegistry::new();
        counters.histogram("read_bytes").record(512);
        ingest_counter_registry(&reg, &counters);
        let snap = reg.snapshot();
        assert!(snap
            .histograms
            .iter()
            .any(|(k, h)| k.name == "gsd_storage_read_bytes" && h.count == 1));
    }
}
