//! Metrics exposition and performance-trajectory tooling for GraphSD.
//!
//! This crate turns the raw observability substrate (`gsd-trace` events,
//! `CounterRegistry` histograms, `RunStats` accounting) into tracked,
//! comparable artifacts:
//!
//! * [`registry`] — a labeled metrics registry (counters, gauges and
//!   log₂ histograms with p50/p95/p99) that aggregates trace events;
//! * [`expo`] — Prometheus text-format and JSON exposition of a registry
//!   snapshot, plus a strict text-format validator;
//! * [`bridge`] — [`MetricsSink`](bridge::MetricsSink), a `TraceSink`
//!   that feeds the registry from a live run and periodically writes
//!   snapshot files (`--metrics-out`);
//! * [`bench`] — the schema-versioned `BENCH_*.json` report emitted by
//!   the wall-time benchmark harness, with validation and a
//!   deterministic-counter baseline comparison for CI gating;
//! * [`report`] — post-processing of a JSONL trace into per-phase time
//!   breakdowns, I/O-size histograms, prefetch analysis, hottest
//!   sub-blocks and scheduler decision explanations (`gsd report`);
//! * [`rss`] — peak resident-set-size sampling (Linux `VmHWM`).
//!
//! Everything here is strictly *observational*: attaching a
//! [`MetricsSink`](bridge::MetricsSink) to a run must leave results and
//! accounted I/O bit-identical to a run without one (enforced by
//! `tests/metrics_neutrality.rs` at the workspace root).

#![forbid(unsafe_code)]

pub mod bench;
pub mod bridge;
pub mod expo;
pub mod registry;
pub mod report;
pub mod rss;

pub use bench::{median, BenchEntry, BenchReport, BENCH_SCHEMA_VERSION};
pub use bridge::MetricsSink;
pub use expo::ExpoFormat;
pub use registry::{MetricsRegistry, MetricsSnapshot, SeriesKey};
pub use report::TraceReport;
