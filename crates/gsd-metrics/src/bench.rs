//! The schema-versioned `BENCH_*.json` wall-time benchmark report.
//!
//! The wall-time harness (`gsd bench` / the `bench` runner in
//! `gsd-bench`) measures each engine × algorithm × dataset cell with
//! warmup/repeat/median-of-N discipline on real storage and serializes
//! the result here. Reports are committed at the repo root
//! (`BENCH_<label>.json`) so the performance trajectory is tracked in
//! git history; [`BenchReport::compare_deterministic`] gates CI on the
//! counters that are reproducible across machines (bytes moved,
//! iteration counts, prefetch totals) while leaving wall times and RSS
//! as informational.

use serde::{DeError, Deserialize, Serialize, Value};

/// Version of the `BENCH_*.json` schema. Bump on any breaking change to
/// the field set; consumers must reject unknown major versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One benchmark cell: a (system, algorithm, dataset) triple measured
/// over `wall_us.len()` timed repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// System label (`"GraphSD"`, `"HUS-Graph"`, ...).
    pub system: String,
    /// Algorithm label (`"PR"`, `"CC"`, ...).
    pub algorithm: String,
    /// Dataset name (`"twitter_sim"`, ...).
    pub dataset: String,
    /// BSP iterations the run executed (identical across repeats — the
    /// engines are deterministic; a drift here is a correctness bug).
    pub iterations: u32,
    /// Wall time of every timed repeat, microseconds, in execution order.
    pub wall_us: Vec<u64>,
    /// Median of `wall_us` (upper median for even counts).
    pub wall_us_median: u64,
    /// I/O wait time of the median repeat, microseconds.
    pub io_wait_us: u64,
    /// Scatter + apply compute time of the median repeat, microseconds.
    pub compute_us: u64,
    /// Prefetch stall time of the median repeat, microseconds (a
    /// component of `io_wait_us`; zero with prefetching disabled).
    pub stall_us: u64,
    /// Scheduler benefit-evaluation time of the median repeat,
    /// microseconds.
    pub scheduler_us: u64,
    /// Bytes read from storage during one repeat (deterministic).
    pub bytes_read: u64,
    /// Bytes written to storage during one repeat (deterministic).
    pub bytes_written: u64,
    /// Prefetch hits of the median repeat (timing-dependent split).
    pub prefetch_hits: u64,
    /// Prefetch misses of the median repeat (timing-dependent split;
    /// `prefetch_hits + prefetch_misses` is deterministic).
    pub prefetch_misses: u64,
    /// `hits / (hits + misses)`, or 0.0 with prefetching disabled.
    pub prefetch_hit_rate: f64,
    /// Peak resident set size of the process after the median repeat,
    /// bytes; 0 where the platform offers no reading.
    pub peak_rss_bytes: u64,
}

impl BenchEntry {
    fn key(&self) -> (String, String, String) {
        (
            self.system.clone(),
            self.algorithm.clone(),
            self.dataset.clone(),
        )
    }
}

impl Serialize for BenchEntry {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("system".to_string(), Value::Str(self.system.clone())),
            ("algorithm".to_string(), Value::Str(self.algorithm.clone())),
            ("dataset".to_string(), Value::Str(self.dataset.clone())),
            (
                "iterations".to_string(),
                Value::U64(u64::from(self.iterations)),
            ),
            (
                "wall_us".to_string(),
                Value::Seq(self.wall_us.iter().map(|v| Value::U64(*v)).collect()),
            ),
            (
                "wall_us_median".to_string(),
                Value::U64(self.wall_us_median),
            ),
            ("io_wait_us".to_string(), Value::U64(self.io_wait_us)),
            ("compute_us".to_string(), Value::U64(self.compute_us)),
            ("stall_us".to_string(), Value::U64(self.stall_us)),
            ("scheduler_us".to_string(), Value::U64(self.scheduler_us)),
            ("bytes_read".to_string(), Value::U64(self.bytes_read)),
            ("bytes_written".to_string(), Value::U64(self.bytes_written)),
            ("prefetch_hits".to_string(), Value::U64(self.prefetch_hits)),
            (
                "prefetch_misses".to_string(),
                Value::U64(self.prefetch_misses),
            ),
            (
                "prefetch_hit_rate".to_string(),
                Value::F64(self.prefetch_hit_rate),
            ),
            (
                "peak_rss_bytes".to_string(),
                Value::U64(self.peak_rss_bytes),
            ),
        ])
    }
}

fn str_field(v: &Value, name: &str) -> Result<String, DeError> {
    String::from_value(serde::value_field(v, name)?)
}

fn u64_field(v: &Value, name: &str) -> Result<u64, DeError> {
    u64::from_value(serde::value_field(v, name)?)
}

fn f64_field(v: &Value, name: &str) -> Result<f64, DeError> {
    f64::from_value(serde::value_field(v, name)?)
}

fn u32_field(v: &Value, name: &str) -> Result<u32, DeError> {
    let raw = u64_field(v, name)?;
    u32::try_from(raw).map_err(|_| DeError::msg(format!("field {name} out of u32 range: {raw}")))
}

impl Deserialize for BenchEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let wall_us = match serde::value_field(v, "wall_us")? {
            Value::Seq(items) => items
                .iter()
                .map(u64::from_value)
                .collect::<Result<Vec<u64>, DeError>>()?,
            _ => return Err(DeError::msg("wall_us is not an array")),
        };
        Ok(BenchEntry {
            system: str_field(v, "system")?,
            algorithm: str_field(v, "algorithm")?,
            dataset: str_field(v, "dataset")?,
            iterations: u32_field(v, "iterations")?,
            wall_us,
            wall_us_median: u64_field(v, "wall_us_median")?,
            io_wait_us: u64_field(v, "io_wait_us")?,
            compute_us: u64_field(v, "compute_us")?,
            stall_us: u64_field(v, "stall_us")?,
            scheduler_us: u64_field(v, "scheduler_us")?,
            bytes_read: u64_field(v, "bytes_read")?,
            bytes_written: u64_field(v, "bytes_written")?,
            prefetch_hits: u64_field(v, "prefetch_hits")?,
            prefetch_misses: u64_field(v, "prefetch_misses")?,
            prefetch_hit_rate: f64_field(v, "prefetch_hit_rate")?,
            peak_rss_bytes: u64_field(v, "peak_rss_bytes")?,
        })
    }
}

/// A full benchmark report: one entry per measured cell plus the
/// measurement configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Report label — the `<label>` of `BENCH_<label>.json`.
    pub label: String,
    /// Dataset scale the run used (`"tiny"`, `"small"`, `"medium"`).
    pub scale: String,
    /// Untimed warmup runs per cell.
    pub warmup: u32,
    /// Timed repeats per cell.
    pub repeats: u32,
    /// Whether the prefetch pipeline was enabled.
    pub prefetch: bool,
    /// Measured cells.
    pub entries: Vec<BenchEntry>,
}

impl Serialize for BenchReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(self.schema_version),
            ),
            ("label".to_string(), Value::Str(self.label.clone())),
            ("scale".to_string(), Value::Str(self.scale.clone())),
            ("warmup".to_string(), Value::U64(u64::from(self.warmup))),
            ("repeats".to_string(), Value::U64(u64::from(self.repeats))),
            ("prefetch".to_string(), Value::Bool(self.prefetch)),
            (
                "entries".to_string(),
                Value::Seq(self.entries.iter().map(|e| e.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for BenchReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema_version = u64_field(v, "schema_version")?;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(DeError::msg(format!(
                "unsupported bench schema version {schema_version} (this build reads {BENCH_SCHEMA_VERSION})"
            )));
        }
        let entries = match serde::value_field(v, "entries")? {
            Value::Seq(items) => items
                .iter()
                .map(BenchEntry::from_value)
                .collect::<Result<Vec<BenchEntry>, DeError>>()?,
            _ => return Err(DeError::msg("entries is not an array")),
        };
        let prefetch = match serde::value_field(v, "prefetch")? {
            Value::Bool(b) => *b,
            _ => return Err(DeError::msg("prefetch is not a bool")),
        };
        Ok(BenchReport {
            schema_version,
            label: str_field(v, "label")?,
            scale: str_field(v, "scale")?,
            warmup: u32_field(v, "warmup")?,
            repeats: u32_field(v, "repeats")?,
            prefetch,
            entries,
        })
    }
}

/// Median of `xs` (upper median for even counts); 0 for an empty slice.
pub fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

impl BenchReport {
    /// The canonical file name for this report: `BENCH_<label>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }

    /// Serializes the report to pretty JSON (trailing newline included,
    /// since these files are committed).
    pub fn to_json(&self) -> String {
        // Serializing an owned Value tree cannot fail.
        let mut s = serde_json::to_string_pretty(&self.to_value()).unwrap_or_default();
        s.push('\n');
        s
    }

    /// Parses and validates a report from JSON text.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        Self::validate_value(&value)?;
        BenchReport::from_value(&value).map_err(|e| format!("schema error: {e:?}"))
    }

    /// Structural schema validation of a parsed JSON value: field
    /// presence, types and internal consistency (median ∈ wall_us,
    /// wall_us length == repeats, hit rate in range). Returns a
    /// diagnostic naming the first offending field.
    pub fn validate_value(v: &Value) -> Result<(), String> {
        let report = BenchReport::from_value(v).map_err(|e| format!("schema error: {e:?}"))?;
        for (idx, e) in report.entries.iter().enumerate() {
            let at = format!(
                "entries[{idx}] ({}/{}/{})",
                e.system, e.algorithm, e.dataset
            );
            if e.wall_us.len() != report.repeats as usize {
                return Err(format!(
                    "{at}: wall_us has {} samples, repeats is {}",
                    e.wall_us.len(),
                    report.repeats
                ));
            }
            if !e.wall_us.contains(&e.wall_us_median) {
                return Err(format!(
                    "{at}: wall_us_median {} is not one of the samples",
                    e.wall_us_median
                ));
            }
            if e.wall_us_median != median(&e.wall_us) {
                return Err(format!(
                    "{at}: wall_us_median {} disagrees with recomputed median {}",
                    e.wall_us_median,
                    median(&e.wall_us)
                ));
            }
            if !(0.0..=1.0).contains(&e.prefetch_hit_rate) {
                return Err(format!(
                    "{at}: prefetch_hit_rate {} outside [0, 1]",
                    e.prefetch_hit_rate
                ));
            }
            if e.iterations == 0 {
                return Err(format!("{at}: zero iterations"));
            }
        }
        Ok(())
    }

    /// Compares the **deterministic** counters of `self` against a
    /// committed `baseline`: per matching (system, algorithm, dataset)
    /// cell, `iterations`, `bytes_read`, `bytes_written` and the
    /// prefetch total (`hits + misses`) must be identical. Wall times,
    /// the hit/miss *split* and RSS are timing-dependent and ignored.
    /// Returns every drifted cell in the error, or `Ok` with the number
    /// of compared cells.
    pub fn compare_deterministic(&self, baseline: &BenchReport) -> Result<usize, String> {
        let mut drifts = Vec::new();
        let mut compared = 0usize;
        for base in &baseline.entries {
            let Some(entry) = self.entries.iter().find(|e| e.key() == base.key()) else {
                drifts.push(format!(
                    "{}/{}/{}: missing from the new report",
                    base.system, base.algorithm, base.dataset
                ));
                continue;
            };
            compared += 1;
            let mut drift = |what: &str, got: u64, want: u64| {
                if got != want {
                    drifts.push(format!(
                        "{}/{}/{}: {what} {got} != baseline {want}",
                        base.system, base.algorithm, base.dataset
                    ));
                }
            };
            drift(
                "iterations",
                u64::from(entry.iterations),
                u64::from(base.iterations),
            );
            drift("bytes_read", entry.bytes_read, base.bytes_read);
            drift("bytes_written", entry.bytes_written, base.bytes_written);
            drift(
                "prefetch total (hits+misses)",
                entry.prefetch_hits + entry.prefetch_misses,
                base.prefetch_hits + base.prefetch_misses,
            );
        }
        if drifts.is_empty() {
            Ok(compared)
        } else {
            Err(drifts.join("\n"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(system: &str, wall: Vec<u64>) -> BenchEntry {
        BenchEntry {
            system: system.to_string(),
            algorithm: "PR".to_string(),
            dataset: "kron_sim".to_string(),
            iterations: 5,
            wall_us_median: median(&wall),
            wall_us: wall,
            io_wait_us: 800,
            compute_us: 150,
            stall_us: 40,
            scheduler_us: 10,
            bytes_read: 1 << 20,
            bytes_written: 1 << 16,
            prefetch_hits: 30,
            prefetch_misses: 10,
            prefetch_hit_rate: 0.75,
            peak_rss_bytes: 10 << 20,
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            label: "test".to_string(),
            scale: "tiny".to_string(),
            warmup: 1,
            repeats: 3,
            prefetch: true,
            entries: vec![entry("GraphSD", vec![1200, 1000, 1100])],
        }
    }

    #[test]
    fn median_is_upper_for_even_counts() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 9]), 9);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 3, 2]), 3);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        assert_eq!(r.file_name(), "BENCH_test.json");
        let json = r.to_json();
        assert!(json.ends_with('\n'));
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn validation_rejects_inconsistent_reports() {
        let mut r = report();
        r.entries[0].wall_us_median = 9999;
        assert!(BenchReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("not one of the samples"));

        let mut r = report();
        r.entries[0].wall_us.push(1);
        assert!(BenchReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("samples"));

        let mut r = report();
        r.entries[0].prefetch_hit_rate = 1.5;
        assert!(BenchReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("outside"));

        let mut r = report();
        r.schema_version = BENCH_SCHEMA_VERSION + 1;
        assert!(BenchReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("unsupported bench schema version"));

        // Median must be a real sample AND the recomputed median.
        let mut r = report();
        r.entries[0].wall_us_median = 1000; // a sample, but not the median
        assert!(BenchReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("recomputed median"));
    }

    #[test]
    fn deterministic_comparison_ignores_timing() {
        let base = report();
        let mut new = report();
        // Timing drifts are fine.
        new.entries[0].wall_us = vec![5000, 4000, 4500];
        new.entries[0].wall_us_median = 4500;
        new.entries[0].peak_rss_bytes = 99 << 20;
        // Hit/miss split moves but the total is stable.
        new.entries[0].prefetch_hits = 25;
        new.entries[0].prefetch_misses = 15;
        assert_eq!(new.compare_deterministic(&base), Ok(1));
        // Byte drift is a failure.
        new.entries[0].bytes_read += 1;
        let err = new.compare_deterministic(&base).unwrap_err();
        assert!(err.contains("bytes_read"));
        // A missing cell is a failure.
        let empty = BenchReport {
            entries: Vec::new(),
            ..report()
        };
        assert!(empty
            .compare_deterministic(&base)
            .unwrap_err()
            .contains("missing"));
    }
}
