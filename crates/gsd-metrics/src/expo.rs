//! Exposition: rendering a [`MetricsSnapshot`] for the outside world.
//!
//! Two formats are supported: the Prometheus text format (version 0.0.4,
//! the `text/plain` scrape format) and a JSON document built on the
//! workspace serde stand-in. [`validate_prometheus`] is a strict parser
//! for the text format used by the acceptance tests and by consumers who
//! want to check a snapshot file before ingesting it.

use crate::registry::MetricsSnapshot;
use serde::Serialize;

/// Output format for a metrics snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpoFormat {
    /// Prometheus text format 0.0.4.
    Prometheus,
    /// JSON document.
    Json,
}

impl ExpoFormat {
    /// Picks a format from a file path: `.prom` and `.txt` mean
    /// Prometheus text format, anything else means JSON.
    pub fn from_path(path: &std::path::Path) -> ExpoFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("prom") | Some("txt") => ExpoFormat::Prometheus,
            _ => ExpoFormat::Json,
        }
    }
}

/// Escapes a label value for the text format (`\\`, `\"`, `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric or label name to the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); invalid characters become `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (idx, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (idx > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn render_series(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{}=\"{}\"", k, escape_label_value(v)));
    }
    if pairs.is_empty() {
        sanitize_name(name)
    } else {
        format!("{}{{{}}}", sanitize_name(name), pairs.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot in the Prometheus text format.
///
/// Histograms are expanded to cumulative `_bucket{le=...}` samples plus
/// `_sum` and `_count`, per the exposition format spec. `# HELP` and
/// `# TYPE` comments are emitted once per metric name.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let help_for = |name: &str| -> Option<&str> {
        snap.help
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.as_str())
    };
    let mut headered: Vec<String> = Vec::new();
    let mut header = |out: &mut String, name: &str, kind: &str| {
        let sname = sanitize_name(name);
        if headered.contains(&sname) {
            return;
        }
        if let Some(help) = help_for(name) {
            out.push_str(&format!("# HELP {sname} {}\n", help.replace('\n', " ")));
        }
        out.push_str(&format!("# TYPE {sname} {kind}\n"));
        headered.push(sname);
    };

    for (key, value) in &snap.counters {
        header(&mut out, &key.name, "counter");
        out.push_str(&render_series(&key.name, &key.labels, None));
        out.push_str(&format!(" {value}\n"));
    }
    for (key, value) in &snap.gauges {
        header(&mut out, &key.name, "gauge");
        out.push_str(&render_series(&key.name, &key.labels, None));
        out.push_str(&format!(" {}\n", fmt_f64(*value)));
    }
    for (key, h) in &snap.histograms {
        header(&mut out, &key.name, "histogram");
        let bucket_name = format!("{}_bucket", key.name);
        let mut cumulative = 0u64;
        for (upper, n) in &h.buckets {
            cumulative += n;
            let le = format!("{upper}");
            out.push_str(&render_series(&bucket_name, &key.labels, Some(("le", &le))));
            out.push_str(&format!(" {cumulative}\n"));
        }
        out.push_str(&render_series(
            &bucket_name,
            &key.labels,
            Some(("le", "+Inf")),
        ));
        out.push_str(&format!(" {}\n", h.count));
        out.push_str(&render_series(
            &format!("{}_sum", key.name),
            &key.labels,
            None,
        ));
        out.push_str(&format!(" {}\n", h.sum));
        out.push_str(&render_series(
            &format!("{}_count", key.name),
            &key.labels,
            None,
        ));
        out.push_str(&format!(" {}\n", h.count));
    }
    out
}

/// Renders the snapshot as a JSON document.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    // Serializing an owned Value tree cannot fail.
    serde_json::to_string_pretty(&snap.to_value()).unwrap_or_default()
}

fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Parses a `{label="value",...}` body; returns `Err` on malformed input.
fn validate_label_body(body: &str, line_no: usize) -> Result<(), String> {
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = &rest[..eq];
        if !is_valid_name(name) {
            return Err(format!("line {line_no}: bad label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("line {line_no}: label value not quoted")),
        }
        // Walk the escaped string to its closing quote.
        let mut close = None;
        let mut escaped = false;
        for (idx, c) in chars {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(idx);
                break;
            }
        }
        let close = close.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        rest = &rest[close + 1..];
        match rest.strip_prefix(',') {
            Some(more) => rest = more,
            None if rest.is_empty() => return Ok(()),
            None => return Err(format!("line {line_no}: junk after label value: {rest:?}")),
        }
    }
}

/// Strictly validates Prometheus text-format exposition: every non-blank
/// line must be a well-formed `# HELP` / `# TYPE` comment or a sample
/// line `name[{labels}] value [timestamp]`. Returns the number of sample
/// lines on success.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !is_valid_name(name) {
                    return Err(format!("line {line_no}: bad TYPE metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: bad TYPE kind {kind:?}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !is_valid_name(name) {
                    return Err(format!("line {line_no}: bad HELP metric name {name:?}"));
                }
            }
            // Other comments are allowed free-form.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (series, tail) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unbalanced '{{'"))?;
                if close < open {
                    return Err(format!("line {line_no}: unbalanced '}}'"));
                }
                let name = &line[..open];
                if !is_valid_name(name) {
                    return Err(format!("line {line_no}: bad metric name {name:?}"));
                }
                let body = &line[open + 1..close];
                if !body.is_empty() {
                    validate_label_body(body, line_no)?;
                }
                (name, line[close + 1..].trim_start())
            }
            None => {
                let mut parts = line.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                if !is_valid_name(name) {
                    return Err(format!("line {line_no}: bad metric name {name:?}"));
                }
                (name, parts.next().unwrap_or("").trim_start())
            }
        };
        let mut fields = tail.split_whitespace();
        let value = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: series {series:?} has no value"))?;
        if !is_valid_value(value) {
            return Err(format!("line {line_no}: bad sample value {value:?}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: bad timestamp {ts:?}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {line_no}: trailing junk after sample"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricsRegistry, SeriesKey};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.set_help("gsd_block_loads_total", "Edge sub-block loads");
        reg.inc(
            SeriesKey::with_labels("gsd_block_loads_total", &[("seq", "true")]),
            7,
        );
        reg.inc(
            SeriesKey::with_labels("gsd_block_loads_total", &[("seq", "false")]),
            3,
        );
        reg.set_gauge(SeriesKey::plain("gsd_frontier"), 42.0);
        for v in [100u64, 5000, 5000] {
            reg.observe(SeriesKey::plain("gsd_block_load_bytes"), v);
        }
        reg
    }

    #[test]
    fn prometheus_text_round_trips_through_validator() {
        let text = to_prometheus(&sample_registry().snapshot());
        let samples = validate_prometheus(&text).unwrap();
        // 2 counters + 1 gauge + (2 buckets + +Inf + sum + count) = 8.
        assert_eq!(samples, 8);
        assert!(text.contains("# TYPE gsd_block_loads_total counter"));
        assert!(text.contains("# HELP gsd_block_loads_total Edge sub-block loads"));
        assert!(text.contains(r#"gsd_block_loads_total{seq="true"} 7"#));
        assert!(text.contains("# TYPE gsd_block_load_bytes histogram"));
        assert!(text.contains(r#"gsd_block_load_bytes_bucket{le="127"} 1"#));
        // Buckets are cumulative.
        assert!(text.contains(r#"gsd_block_load_bytes_bucket{le="8191"} 3"#));
        assert!(text.contains(r#"gsd_block_load_bytes_bucket{le="+Inf"} 3"#));
        assert!(text.contains("gsd_block_load_bytes_sum 10100"));
        assert!(text.contains("gsd_block_load_bytes_count 3"));
        assert!(text.contains("gsd_frontier 42"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("9bad_name 1").is_err());
        assert!(validate_prometheus("name{x=unquoted} 1").is_err());
        assert!(validate_prometheus("name{x=\"v\"").is_err());
        assert!(validate_prometheus("name notanumber").is_err());
        assert!(validate_prometheus("name 1 notatimestamp").is_err());
        assert!(validate_prometheus("# TYPE name rainbow").is_err());
        assert!(validate_prometheus("name").is_err());
        // Valid edge cases.
        assert_eq!(validate_prometheus("name +Inf\n").unwrap(), 1);
        assert_eq!(
            validate_prometheus("name{a=\"x\\\"y\"} 2 123\n").unwrap(),
            1
        );
        assert_eq!(validate_prometheus("\n# free comment\n").unwrap(), 0);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.inc(SeriesKey::with_labels("m", &[("path", "a\\b\"c\nd")]), 1);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains(r#"m{path="a\\b\"c\nd"} 1"#));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("gsd.block-loads"), "gsd_block_loads");
        assert_eq!(sanitize_name("0abc"), "_abc");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn json_exposition_parses_back() {
        let json = to_json(&sample_registry().snapshot());
        let v = serde_json::from_str::<serde::Value>(&json).unwrap();
        let counters = v.get("counters").and_then(|c| match c {
            serde::Value::Seq(items) => Some(items.len()),
            _ => None,
        });
        assert_eq!(counters, Some(2));
    }
}
