//! Incremental recompute: continue a converged run after a mutation batch
//! instead of restarting from scratch.
//!
//! # Soundness argument
//!
//! The incremental path is restricted to **monotone frontier programs** —
//! `apply_all() == false` and no iteration cap — whose `apply` only ever
//! moves a value toward the combine order's bottom (BFS, CC, SSSP: all
//! min-combine). Such programs have a unique fixpoint that any schedule
//! reaches from any valid upper bound, which is what makes warm-starting
//! exact rather than approximate:
//!
//! * **Inserts only lower values.** Every warm value was witnessed by
//!   paths that still exist, so it is a valid upper bound on the new
//!   fixpoint; seeding the insert sources lets the engine push the new
//!   edges' influence down to exactness.
//! * **Deletes can raise values**, which min-combine cannot do — so every
//!   vertex whose warm value might have depended on a deleted edge is
//!   *reset* to its initial value. The dependent set is the forward
//!   closure of the deleted edges' destinations over the union of the
//!   new grid and the deleted edges themselves (the old edge set is a
//!   subset of that union, so every stale propagation path is covered).
//!   Sources of surviving edges entering the reset region are seeded so
//!   their still-valid values flow back in.
//!
//! Programs outside the gate (PageRank's dense fixed-iteration recurrence,
//! PPR) fall back to a full run — correct, just not incremental — and the
//! report says so.
//!
//! The region closure is computed with whole-grid sweeps through the
//! overlay-merged read path rather than an in-memory adjacency list, so
//! the pass stays out-of-core like everything else.

use crate::batch::MutationBatch;
use gsd_core::{GraphSdConfig, GraphSdEngine};
use gsd_graph::delta::DeltaOp;
use gsd_graph::GridGraph;
use gsd_runtime::{Engine, InitialFrontier, ProgramContext, RunOptions, RunResult, VertexProgram};
use gsd_trace::{TraceEvent, TraceSink};
use std::sync::Arc;

/// How an incremental run was seeded (or why it was not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Vertices in the initial frontier.
    pub seeds: u64,
    /// Vertices reset to their initial value (delete-dependent region).
    pub resets: u64,
    /// The program failed the monotone-frontier gate and was rerun from
    /// scratch instead.
    pub full_fallback: bool,
}

/// A program warm-started from `values`, seeded from `seeds`, and
/// otherwise identical to the wrapped program. `init_value` returns the
/// warm value — region resets are applied to `values` *before* wrapping.
pub struct SeededProgram<'a, P: VertexProgram> {
    inner: &'a P,
    values: Vec<P::Value>,
    seeds: Vec<u32>,
}

impl<'a, P: VertexProgram> SeededProgram<'a, P> {
    /// Wraps `inner` with warm `values` and an explicit seed frontier.
    pub fn new(inner: &'a P, values: Vec<P::Value>, seeds: Vec<u32>) -> Self {
        SeededProgram {
            inner,
            values,
            seeds,
        }
    }
}

impl<P: VertexProgram> VertexProgram for SeededProgram<'_, P> {
    type Value = P::Value;
    type Accum = P::Accum;

    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn init_value(&self, v: u32, _ctx: &ProgramContext) -> P::Value {
        self.values[v as usize]
    }
    fn zero_accum(&self) -> P::Accum {
        self.inner.zero_accum()
    }
    fn scatter(
        &self,
        u: u32,
        value: P::Value,
        weight: f32,
        ctx: &ProgramContext,
    ) -> Option<P::Accum> {
        self.inner.scatter(u, value, weight, ctx)
    }
    fn combine(&self, a: P::Accum, b: P::Accum) -> P::Accum {
        self.inner.combine(a, b)
    }
    fn apply(
        &self,
        v: u32,
        old: P::Value,
        accum: P::Accum,
        ctx: &ProgramContext,
    ) -> Option<P::Value> {
        self.inner.apply(v, old, accum, ctx)
    }
    fn initial_frontier(&self, _ctx: &ProgramContext) -> InitialFrontier {
        InitialFrontier::Seeds(self.seeds.clone())
    }
    fn apply_all(&self) -> bool {
        self.inner.apply_all()
    }
    fn max_iterations(&self) -> Option<u32> {
        self.inner.max_iterations()
    }
    fn value_bytes(&self) -> u64 {
        self.inner.value_bytes()
    }
}

/// Forward closure of the deleted edges' destinations over the merged
/// grid plus the deleted edges, via repeated whole-grid sweeps. Also
/// returns the in-boundary: sources of surviving edges entering the
/// region from outside it.
fn affected_region(
    grid: &GridGraph,
    deletes: &[(u32, u32)],
) -> std::io::Result<(Vec<bool>, Vec<u32>)> {
    let n = grid.num_vertices() as usize;
    let mut in_region = vec![false; n];
    for &(_, d) in deletes {
        in_region[d as usize] = true;
    }
    let p = grid.p();
    let mut scratch = Vec::new();
    let mut block = Vec::new();
    let mut grew = true;
    while grew {
        grew = false;
        for i in 0..p {
            for j in 0..p {
                grid.read_block_into(i, j, &mut scratch, &mut block)?;
                for e in &block {
                    if in_region[e.src as usize] && !in_region[e.dst as usize] {
                        in_region[e.dst as usize] = true;
                        grew = true;
                    }
                }
            }
        }
        for &(s, d) in deletes {
            if in_region[s as usize] && !in_region[d as usize] {
                in_region[d as usize] = true;
                grew = true;
            }
        }
    }
    // One more sweep for the in-boundary of the now-stable region.
    let mut boundary = Vec::new();
    let mut seen = vec![false; n];
    for i in 0..p {
        for j in 0..p {
            grid.read_block_into(i, j, &mut scratch, &mut block)?;
            for e in &block {
                if in_region[e.dst as usize] && !in_region[e.src as usize] && !seen[e.src as usize]
                {
                    seen[e.src as usize] = true;
                    boundary.push(e.src);
                }
            }
        }
    }
    Ok((in_region, boundary))
}

/// Continues a converged run of `program` across the mutation batch that
/// produced the current (overlay-merged) state of `grid`.
///
/// `prev_values` are the committed values of the run *before* the batch
/// was ingested. Returns the new fixpoint — bit-identical to a
/// from-scratch run on the merged grid for programs passing the monotone
/// gate — plus a report of how it got there.
pub fn incremental_run<P: VertexProgram>(
    grid: GridGraph,
    program: &P,
    prev_values: Vec<P::Value>,
    batch: &MutationBatch,
    config: GraphSdConfig,
    trace: Arc<dyn TraceSink>,
) -> std::io::Result<(RunResult<P::Value>, IncrementalReport)> {
    let n = grid.num_vertices() as usize;
    if prev_values.len() != n {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "previous run has {} values but the grid has {n} vertices",
                prev_values.len()
            ),
        ));
    }

    if program.apply_all() || program.max_iterations().is_some() {
        // Dense or iteration-capped programs recompute every value each
        // round anyway; warm-starting them is not exact. Run in full.
        let mut engine = GraphSdEngine::new(grid, config)?;
        engine.set_trace(trace);
        let result = engine.run(program, &RunOptions::default())?;
        return Ok((
            result,
            IncrementalReport {
                seeds: 0,
                resets: 0,
                full_fallback: true,
            },
        ));
    }

    let deletes: Vec<(u32, u32)> = batch
        .ops
        .iter()
        .filter_map(|op| match op {
            DeltaOp::Delete { src, dst } => Some((*src, *dst)),
            DeltaOp::Insert(_) => None,
        })
        .collect();
    let (in_region, boundary) = affected_region(&grid, &deletes)?;

    let degrees = Arc::new(grid.load_out_degrees()?);
    let ctx = ProgramContext::new(grid.num_vertices(), degrees);

    let mut values = prev_values;
    let mut resets = 0u64;
    let mut seed_mark = vec![false; n];
    let mut seeds = Vec::new();
    let seed = |v: u32, mark: &mut Vec<bool>, seeds: &mut Vec<u32>| {
        if !mark[v as usize] {
            mark[v as usize] = true;
            seeds.push(v);
        }
    };
    for (v, reset) in in_region.iter().enumerate() {
        if *reset {
            values[v] = program.init_value(v as u32, &ctx);
            resets += 1;
            seed(v as u32, &mut seed_mark, &mut seeds);
        }
    }
    for &src in &boundary {
        seed(src, &mut seed_mark, &mut seeds);
    }
    for op in &batch.ops {
        if let DeltaOp::Insert(e) = op {
            seed(e.src, &mut seed_mark, &mut seeds);
        }
    }
    seeds.sort_unstable();

    trace.emit(&TraceEvent::IncrementalSeeded {
        seeds: seeds.len() as u64,
        resets,
    });
    let report = IncrementalReport {
        seeds: seeds.len() as u64,
        resets,
        full_fallback: false,
    };
    let seeded = SeededProgram::new(program, values, seeds);
    let mut engine = GraphSdEngine::new(grid, config)?;
    engine.set_trace(trace);
    let result = engine.run(&seeded, &RunOptions::default())?;
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest;
    use gsd_algos::{Bfs, ConnectedComponents, PageRank, Sssp};
    use gsd_graph::preprocess::{preprocess, PreprocessConfig};
    use gsd_graph::{GeneratorConfig, GraphKind};
    use gsd_io::{MemStorage, SharedStorage};
    use gsd_runtime::Value;

    fn fingerprint<V: Value>(values: &[V]) -> u64 {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        gsd_integrity::fnv64(&bytes)
    }

    fn setup() -> SharedStorage {
        let g = GeneratorConfig::new(GraphKind::RMat, 160, 900, 11).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("").with_intervals(3),
        )
        .unwrap();
        storage
    }

    fn run_full<P: VertexProgram>(storage: &SharedStorage, program: &P) -> Vec<P::Value> {
        let grid = GridGraph::open(storage.clone()).unwrap();
        let mut engine = GraphSdEngine::new(grid, GraphSdConfig::default()).unwrap();
        engine.run(program, &RunOptions::default()).unwrap().values
    }

    fn check_incremental<P: VertexProgram>(program: &P, batch: &MutationBatch) {
        let storage = setup();
        let warm = run_full(&storage, program);
        ingest(storage.as_ref(), "", batch, gsd_trace::null_sink().as_ref()).unwrap();

        let grid = GridGraph::open(storage.clone()).unwrap();
        let (result, report) = incremental_run(
            grid,
            program,
            warm,
            batch,
            GraphSdConfig::default(),
            gsd_trace::null_sink(),
        )
        .unwrap();
        assert!(!report.full_fallback);
        if batch.deletes() > 0 {
            assert!(report.resets > 0, "deletes must reset a region");
        }

        let scratch = run_full(&storage, program);
        assert_eq!(
            fingerprint(&result.values),
            fingerprint(&scratch),
            "{}: incremental fixpoint differs from from-scratch",
            program.name()
        );
    }

    fn mixed_batch() -> MutationBatch {
        let mut batch = MutationBatch::new();
        batch
            .insert(3, 150, 1.0)
            .insert(150, 4, 1.0)
            .delete(0, 1)
            .delete(2, 3)
            .insert(7, 7, 1.0);
        batch
    }

    #[test]
    fn bfs_incremental_matches_scratch() {
        check_incremental(&Bfs::new(0), &mixed_batch());
    }

    #[test]
    fn cc_incremental_matches_scratch() {
        check_incremental(&ConnectedComponents, &mixed_batch());
    }

    #[test]
    fn sssp_incremental_matches_scratch() {
        check_incremental(&Sssp::new(0), &mixed_batch());
    }

    #[test]
    fn insert_only_batch_skips_resets() {
        let mut batch = MutationBatch::new();
        batch.insert(5, 60, 1.0).insert(60, 61, 1.0);
        let storage = setup();
        let program = Bfs::new(0);
        let warm = run_full(&storage, &program);
        ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        let grid = GridGraph::open(storage.clone()).unwrap();
        let (result, report) = incremental_run(
            grid,
            &program,
            warm,
            &batch,
            GraphSdConfig::default(),
            gsd_trace::null_sink(),
        )
        .unwrap();
        assert_eq!(report.resets, 0);
        assert!(report.seeds <= 2);
        assert_eq!(
            fingerprint(&result.values),
            fingerprint(&run_full(&storage, &program))
        );
    }

    #[test]
    fn pagerank_falls_back_to_full_run() {
        let storage = setup();
        let program = PageRank::default();
        let warm = run_full(&storage, &program);
        let mut batch = MutationBatch::new();
        batch.insert(1, 2, 1.0);
        ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        let grid = GridGraph::open(storage.clone()).unwrap();
        let (result, report) = incremental_run(
            grid,
            &program,
            warm,
            &batch,
            GraphSdConfig::default(),
            gsd_trace::null_sink(),
        )
        .unwrap();
        assert!(report.full_fallback);
        assert_eq!(
            fingerprint(&result.values),
            fingerprint(&run_full(&storage, &program))
        );
    }

    #[test]
    fn mismatched_value_length_is_rejected() {
        let storage = setup();
        let grid = GridGraph::open(storage.clone()).unwrap();
        let err = incremental_run(
            grid,
            &Bfs::new(0),
            vec![0u32; 3],
            &MutationBatch::new(),
            GraphSdConfig::default(),
            gsd_trace::null_sink(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
