//! Ingest: committing a [`MutationBatch`] as one delta epoch.
//!
//! Write protocol (the sealed meta is the commit point — a crash at any
//! earlier step leaves the previous epoch fully intact):
//!
//! 1. one segment object per touched sub-block (`Storage::create` =
//!    write-temp + rename), then [`gsd_io::Storage::sync`] — segments are
//!    durable before anything references them;
//! 2. the cumulative [`DeltaManifest`] under its **epoch-keyed** name
//!    (`delta/manifest_<epoch>.json`), then sync — a crash here leaves an
//!    orphan manifest the committed meta never names;
//! 3. the resealed `meta.json` at format v4 carrying the new epoch, then
//!    sync — the commit point;
//! 4. the previous epoch's manifest is deleted (cleanup, not
//!    correctness).
//!
//! The on-disk meta keeps **base** counts (`num_edges`,
//! `block_edge_counts` describe the base payloads, preserving the
//! objects-match-meta invariant scrub checks); the manifest carries the
//! merged shape, and [`gsd_graph::GridGraph`] patches its in-memory meta
//! at open.

use crate::batch::MutationBatch;
use gsd_graph::delta::{
    encode_segment, manifest_key, read_manifest, segment_key, DeltaManifest, DeltaOp,
};
use gsd_graph::format::{block_edges_key, decode_u32s, DeltaSection, GridMeta};
use gsd_graph::{Edge, DEGREES_KEY, DELTA_FORMAT_VERSION, DELTA_META_FORMAT_VERSION, META_KEY};
use gsd_integrity::{IntegritySection, ObjectEntry};
use gsd_io::Storage;
use gsd_trace::{TraceEvent, TraceSink};
use std::collections::BTreeMap;

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// What one committed ingest did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// The epoch the batch committed (unchanged for an empty batch).
    pub epoch: u64,
    /// Insert ops in the batch.
    pub inserts: u64,
    /// Delete ops in the batch.
    pub deletes: u64,
    /// Segment objects written.
    pub segments: u64,
    /// Total segment bytes written.
    pub segment_bytes: u64,
    /// `|E|` of the merged graph after the batch.
    pub merged_num_edges: u64,
}

/// Applies `ops` in order to `edges` (insert appends one copy, delete
/// removes every copy of the pair) without re-sorting — callers that need
/// canonical order sort afterwards.
fn apply_ops(edges: &mut Vec<Edge>, ops: &[DeltaOp]) {
    for op in ops {
        match op {
            DeltaOp::Insert(e) => edges.push(*e),
            DeltaOp::Delete { src, dst } => edges.retain(|e| e.src != *src || e.dst != *dst),
        }
    }
}

/// Per-source edge counts of a block's edge list.
fn src_counts(edges: &[Edge]) -> BTreeMap<u32, i64> {
    let mut counts = BTreeMap::new();
    for e in edges {
        *counts.entry(e.src).or_insert(0) += 1;
    }
    counts
}

/// Commits `batch` against the grid under `prefix` as one new epoch.
///
/// Requirements: a sorted grid (the merge path relies on the canonical
/// sub-block order; Lumos-layout unsorted grids are rejected) at format
/// v2 or v4 (v1 grids carry no checksums — re-preprocess first), and
/// every op inside the existing vertex universe (mutations never grow
/// `|V|`).
///
/// An empty batch is a no-op that reports the current epoch.
pub fn ingest(
    storage: &dyn Storage,
    prefix: &str,
    batch: &MutationBatch,
    trace: &dyn TraceSink,
) -> std::io::Result<IngestReport> {
    let meta_bytes = storage.read_all(&format!("{prefix}{META_KEY}"))?;
    let mut meta = GridMeta::from_bytes(&meta_bytes)?;
    if !meta.sorted {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "delta ingest requires a sorted grid format (unsorted Lumos-layout grids \
             have no canonical sub-block order to merge into)",
        ));
    }
    if meta.integrity.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "delta ingest requires a checksummed grid (format v2+); re-preprocess first",
        ));
    }

    // Normalize and validate ops: weights collapse to 1 on unweighted
    // grids (their codec stores none), and every vertex must exist.
    let mut ops = batch.ops.clone();
    if !meta.weighted {
        for op in &mut ops {
            if let DeltaOp::Insert(e) = op {
                e.weight = 1.0;
            }
        }
    }
    for op in &ops {
        let (src, dst) = (op.src(), op.dst());
        if src >= meta.num_vertices || dst >= meta.num_vertices {
            return Err(invalid(format!(
                "mutation touches vertex {} but the grid has {} vertices \
                 (delta batches cannot grow the vertex set)",
                src.max(dst),
                meta.num_vertices
            )));
        }
    }

    // Prior merged state: live segments + merged counts + degree patch.
    let (prior_segments, prior_counts, prior_degrees, prior_epoch) = match &meta.delta {
        Some(section) => {
            let manifest = read_manifest(storage, prefix, &meta)?;
            let degrees: BTreeMap<u32, u32> = manifest
                .degree_vertices
                .iter()
                .copied()
                .zip(manifest.degree_values.iter().copied())
                .collect();
            (
                manifest.segments.objects,
                manifest.merged_block_edge_counts,
                degrees,
                section.epoch,
            )
        }
        None => (
            Vec::new(),
            meta.block_edge_counts.clone(),
            BTreeMap::new(),
            0,
        ),
    };

    if batch.is_empty() {
        return Ok(IngestReport {
            epoch: prior_epoch,
            inserts: 0,
            deletes: 0,
            segments: 0,
            segment_bytes: 0,
            merged_num_edges: prior_counts.iter().sum(),
        });
    }

    let intervals = meta.intervals();
    let codec = meta.codec();
    let p = meta.p;
    let epoch = prior_epoch + 1;

    // Group the batch per sub-block ((src, dst) determines exactly one).
    let mut new_ops: BTreeMap<(u32, u32), Vec<DeltaOp>> = BTreeMap::new();
    for op in &ops {
        let i = intervals.interval_of(op.src());
        let j = intervals.interval_of(op.dst());
        new_ops.entry((i, j)).or_default().push(*op);
    }

    // Prior live ops grouped per block (entry order is key order, and the
    // zero-padded epoch in the key makes that epoch order).
    let mut prior_ops: BTreeMap<(u32, u32), Vec<DeltaOp>> = BTreeMap::new();
    for entry in &prior_segments {
        let payload = storage.read_all(&format!("{prefix}{}", entry.key))?;
        if ObjectEntry::of(&entry.key, &payload) != *entry {
            return Err(invalid(format!(
                "delta segment {:?} failed its manifest checksum",
                entry.key
            )));
        }
        let (header, segment_ops) = gsd_graph::delta::decode_segment(&payload)?;
        prior_ops
            .entry((header.i, header.j))
            .or_default()
            .extend(segment_ops);
    }

    // Merge each touched block to derive the new merged counts and the
    // out-degree diff of the batch.
    let base_degrees = decode_u32s(&storage.read_all(&format!("{prefix}{DEGREES_KEY}"))?)?;
    let mut merged_counts = prior_counts;
    let mut degree_diff: BTreeMap<u32, i64> = BTreeMap::new();
    for (&(i, j), block_ops) in &new_ops {
        let mut payload = vec![0u8; meta.block_bytes(i, j) as usize];
        if !payload.is_empty() {
            storage.read_at(&block_edges_key(prefix, i, j), 0, &mut payload)?;
        }
        let mut edges = codec.decode_all(&payload);
        if let Some(prior) = prior_ops.get(&(i, j)) {
            apply_ops(&mut edges, prior);
        }
        let before = src_counts(&edges);
        apply_ops(&mut edges, block_ops);
        let after = src_counts(&edges);
        merged_counts[(i * p + j) as usize] = edges.len() as u64;
        let touched: std::collections::BTreeSet<u32> =
            before.keys().chain(after.keys()).copied().collect();
        for v in touched {
            let diff = after.get(&v).copied().unwrap_or(0) - before.get(&v).copied().unwrap_or(0);
            if diff != 0 {
                *degree_diff.entry(v).or_insert(0) += diff;
            }
        }
    }

    // Absolute merged out-degrees: prior patch extended by this batch.
    let mut degrees = prior_degrees;
    for (v, diff) in degree_diff {
        let current = degrees.get(&v).copied().unwrap_or(base_degrees[v as usize]) as i64;
        let merged = current + diff;
        debug_assert!(merged >= 0, "merged out-degree of {v} went negative");
        degrees.insert(v, merged as u32);
    }

    // --- step 1: segments, durable before anything references them ---
    let mut entries = prior_segments;
    let mut segment_bytes = 0u64;
    let mut segments_written = 0u64;
    for (&(i, j), block_ops) in &new_ops {
        let rel = segment_key("", epoch, i, j);
        let payload = encode_segment(epoch, i, j, block_ops);
        storage.create(&format!("{prefix}{rel}"), &payload)?;
        segment_bytes += payload.len() as u64;
        segments_written += 1;
        entries.push(ObjectEntry::of(rel, &payload));
    }
    storage.sync()?;

    // --- step 2: the cumulative manifest under its epoch-keyed name ---
    let merged_num_edges = merged_counts.iter().sum();
    let manifest = DeltaManifest {
        version: DELTA_FORMAT_VERSION,
        epoch,
        segments: IntegritySection::new(entries),
        merged_num_edges,
        merged_block_edge_counts: merged_counts,
        degree_vertices: degrees.keys().copied().collect(),
        degree_values: degrees.values().copied().collect(),
    };
    storage.create(&manifest_key(prefix, epoch), &manifest.to_bytes())?;
    storage.sync()?;

    // --- step 3: the resealed v4 meta — the commit point ---
    meta.version = DELTA_META_FORMAT_VERSION;
    meta.delta = Some(DeltaSection {
        version: DELTA_FORMAT_VERSION,
        epoch,
    });
    meta.seal();
    storage.create(&format!("{prefix}{META_KEY}"), &meta.to_bytes())?;
    storage.sync()?;

    // --- step 4: cleanup; the old manifest is now unreferenced ---
    if prior_epoch > 0 {
        storage.delete(&manifest_key(prefix, prior_epoch))?;
    }

    trace.emit(&TraceEvent::DeltaApplied {
        epoch,
        inserts: batch.inserts(),
        deletes: batch.deletes(),
        segments: segments_written,
        bytes: segment_bytes,
    });

    Ok(IngestReport {
        epoch,
        inserts: batch.inserts(),
        deletes: batch.deletes(),
        segments: segments_written,
        segment_bytes,
        merged_num_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_graph::preprocess::{preprocess, PreprocessConfig};
    use gsd_graph::{GeneratorConfig, GraphKind, GridGraph};
    use gsd_io::{MemStorage, SharedStorage};
    use std::sync::Arc;

    fn setup(p: u32) -> (gsd_graph::Graph, SharedStorage) {
        let g = GeneratorConfig::new(GraphKind::RMat, 120, 600, 7).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("").with_intervals(p),
        )
        .unwrap();
        (g, storage)
    }

    #[test]
    fn ingest_commits_v4_meta_and_merged_view() {
        let (g, storage) = setup(3);
        let mut batch = MutationBatch::new();
        batch.insert(0, 5, 1.0).insert(0, 5, 1.0).delete(1, 0);
        let report = ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.inserts, 2);
        assert_eq!(report.deletes, 1);
        assert!(report.segments >= 1);

        let grid = GridGraph::open(storage.clone()).unwrap();
        assert_eq!(grid.delta_epoch(), 1);
        // Two copies of (0,5) added; every copy of (1,0) removed.
        let copies_10 = g
            .edges()
            .iter()
            .filter(|e| e.src == 1 && e.dst == 0)
            .count() as u64;
        assert_eq!(
            grid.num_edges(),
            g.num_edges() + 2 - copies_10,
            "merged |E| patched at open"
        );
        let degrees = grid.load_out_degrees().unwrap();
        assert_eq!(degrees[0], g.out_degrees()[0] + 2);
        assert_eq!(degrees[1], g.out_degrees()[1] - copies_10 as u32,);
    }

    #[test]
    fn successive_epochs_stack() {
        let (_, storage) = setup(2);
        let mut b1 = MutationBatch::new();
        b1.insert(3, 4, 1.0);
        let mut b2 = MutationBatch::new();
        b2.delete(3, 4);
        let sink = gsd_trace::null_sink();
        let r1 = ingest(storage.as_ref(), "", &b1, sink.as_ref()).unwrap();
        let r2 = ingest(storage.as_ref(), "", &b2, sink.as_ref()).unwrap();
        assert_eq!((r1.epoch, r2.epoch), (1, 2));
        let grid = GridGraph::open(storage.clone()).unwrap();
        assert_eq!(grid.delta_epoch(), 2);
        // The delete removed the epoch-1 insert AND any base copies.
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                grid.read_block_into(i, j, &mut scratch, &mut out).unwrap();
                assert!(
                    !out.iter().any(|e| e.src == 3 && e.dst == 4),
                    "copy of (3,4) survived in block ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (g, storage) = setup(2);
        let before = storage.read_all(META_KEY).unwrap();
        let report = ingest(
            storage.as_ref(),
            "",
            &MutationBatch::new(),
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(report.merged_num_edges, g.num_edges());
        assert_eq!(storage.read_all(META_KEY).unwrap(), before);
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let (_, storage) = setup(2);
        let mut batch = MutationBatch::new();
        batch.insert(0, 100_000, 1.0);
        let err = ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("grow the vertex set"), "{err}");
    }

    #[test]
    fn unsorted_grid_is_rejected() {
        let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 50, 100, 1).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::lumos("").with_intervals(2),
        )
        .unwrap();
        let mut batch = MutationBatch::new();
        batch.insert(0, 1, 1.0);
        let err = ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }

    #[test]
    fn ingest_rekeys_checkpoint_identity() {
        // `gsd-recover` pins checkpoints to the fingerprint of the meta
        // bytes. The epoch lives in the resealed meta, so every ingest
        // (and compaction, which reseals counts and checksums) produces
        // a new identity and warm checkpoints cannot resume across a
        // mutation.
        let (_, storage) = setup(2);
        let fp0 = gsd_recover::graph_fingerprint(storage.as_ref(), "").unwrap();
        let mut batch = MutationBatch::new();
        batch.insert(0, 9, 1.0);
        ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        let fp1 = gsd_recover::graph_fingerprint(storage.as_ref(), "").unwrap();
        assert_ne!(fp0, fp1, "epoch 1 must re-key checkpoint identity");
        let mut b2 = MutationBatch::new();
        b2.delete(0, 9);
        ingest(storage.as_ref(), "", &b2, gsd_trace::null_sink().as_ref()).unwrap();
        let fp2 = gsd_recover::graph_fingerprint(storage.as_ref(), "").unwrap();
        assert_ne!(fp1, fp2, "epoch 2 must re-key again");
    }

    #[test]
    fn scrub_covers_live_segments() {
        let (_, storage) = setup(2);
        let mut batch = MutationBatch::new();
        batch.insert(1, 2, 1.0).delete(0, 1);
        let report = ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        let (_, scrub) = gsd_graph::scrub_grid(storage.as_ref(), "").unwrap();
        assert!(scrub.is_clean(), "{scrub:?}");
        let segment_keys: Vec<&str> = scrub
            .objects
            .iter()
            .map(|o| o.key.as_str())
            .filter(|k| k.ends_with(".ops"))
            .collect();
        assert_eq!(segment_keys.len() as u64, report.segments);

        // A flipped bit in a segment is caught by the same pass.
        storage.write_at(segment_keys[0], 22, &[0xFF]).unwrap();
        let (_, scrub) = gsd_graph::scrub_grid(storage.as_ref(), "").unwrap();
        assert_eq!(scrub.counts().1, 1);
        assert!(scrub.corrupt().next().unwrap().key.ends_with(".ops"));
    }

    #[test]
    fn weights_collapse_on_unweighted_grids() {
        let (_, storage) = setup(2);
        let mut batch = MutationBatch::new();
        batch.insert(2, 3, 42.0);
        ingest(
            storage.as_ref(),
            "",
            &batch,
            gsd_trace::null_sink().as_ref(),
        )
        .unwrap();
        let grid = GridGraph::open(storage).unwrap();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        let intervals = grid.intervals().clone();
        let (i, j) = (intervals.interval_of(2), intervals.interval_of(3));
        grid.read_block_into(i, j, &mut scratch, &mut out).unwrap();
        let inserted = out.iter().find(|e| e.src == 2 && e.dst == 3).unwrap();
        assert_eq!(inserted.weight, 1.0);
    }
}
