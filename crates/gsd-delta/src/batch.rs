//! Mutation batches: an ordered list of edge inserts/deletes applied to a
//! grid as one atomic epoch.

use gsd_graph::delta::DeltaOp;
use gsd_graph::Edge;

/// One mutation batch. Ops apply in order; the whole batch commits as one
/// epoch (all-or-nothing from any reader's point of view).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBatch {
    /// The ops, in application order.
    pub ops: Vec<DeltaOp>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert of `src -> dst` with `weight`.
    pub fn insert(&mut self, src: u32, dst: u32, weight: f32) -> &mut Self {
        self.ops
            .push(DeltaOp::Insert(Edge::weighted(src, dst, weight)));
        self
    }

    /// Appends a delete of every copy of `src -> dst`.
    pub fn delete(&mut self, src: u32, dst: u32) -> &mut Self {
        self.ops.push(DeltaOp::Delete { src, dst });
        self
    }

    /// Number of insert ops.
    pub fn inserts(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::Insert(_)))
            .count() as u64
    }

    /// Number of delete ops.
    pub fn deletes(&self) -> u64 {
        self.ops.len() as u64 - self.inserts()
    }

    /// Whether the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parses the `gsd ingest` batch text format: one op per line,
    /// `+ <src> <dst> [weight]` inserts (weight defaults to 1), and
    /// `- <src> <dst>` deletes every copy of the pair. Blank lines and
    /// `#` comments are skipped.
    pub fn parse(text: &str) -> std::io::Result<Self> {
        let bad = |line: usize, msg: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("batch line {line}: {msg}"),
            )
        };
        let mut batch = MutationBatch::new();
        for (n, raw) in text.lines().enumerate() {
            let line = n + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let Some(op) = fields.next() else {
                continue; // unreachable: the trimmed line is non-empty
            };
            let mut vertex = |what: &str| -> std::io::Result<u32> {
                fields
                    .next()
                    .ok_or_else(|| bad(line, &format!("missing {what}")))?
                    .parse::<u32>()
                    .map_err(|_| bad(line, &format!("{what} is not a vertex id")))
            };
            match op {
                "+" => {
                    let src = vertex("src")?;
                    let dst = vertex("dst")?;
                    let weight = match fields.next() {
                        Some(w) => w
                            .parse::<f32>()
                            .ok()
                            .filter(|w| w.is_finite())
                            .ok_or_else(|| bad(line, "weight is not a finite number"))?,
                        None => 1.0,
                    };
                    if fields.next().is_some() {
                        return Err(bad(line, "trailing fields after insert"));
                    }
                    batch.insert(src, dst, weight);
                }
                "-" => {
                    let src = vertex("src")?;
                    let dst = vertex("dst")?;
                    if fields.next().is_some() {
                        return Err(bad(line, "trailing fields after delete"));
                    }
                    batch.delete(src, dst);
                }
                other => {
                    return Err(bad(
                        line,
                        &format!("expected '+' or '-' op, found {other:?}"),
                    ))
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inserts_deletes_comments() {
        let batch =
            MutationBatch::parse("# header\n\n+ 1 2\n+ 3 4 0.5\n- 1 2\n  # indented comment\n")
                .unwrap();
        assert_eq!(batch.ops.len(), 3);
        assert_eq!(batch.inserts(), 2);
        assert_eq!(batch.deletes(), 1);
        assert_eq!(batch.ops[0], DeltaOp::Insert(Edge::new(1, 2)));
        assert_eq!(batch.ops[1], DeltaOp::Insert(Edge::weighted(3, 4, 0.5)));
        assert_eq!(batch.ops[2], DeltaOp::Delete { src: 1, dst: 2 });
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["* 1 2", "+ 1", "+ a b", "- 1 2 3", "+ 1 2 inf", "+ 1 2 3 4"] {
            let err = MutationBatch::parse(bad).unwrap_err();
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }
}
