//! Streaming graph mutations for GraphSD grids.
//!
//! `gsd-delta` turns a static preprocessed grid into a mutable one
//! without giving up any of the system's invariants:
//!
//! * [`batch`] — the mutation batch model and the `gsd ingest` text
//!   format (`+ src dst [w]` / `- src dst`).
//! * [`ingest`] — commits a batch as one atomic *epoch*: per-sub-block
//!   delta segments (append-only, checksummed, LSM-style), an
//!   epoch-keyed manifest, and a format-v4 meta reseal as the commit
//!   point. Readers see either the whole epoch or none of it.
//! * [`compact`] — folds live segments back into base sub-blocks,
//!   byte-verified against a full re-preprocess of the merged edge list
//!   before anything is written.
//! * [`incremental`] — warm-starts a converged vertex program across a
//!   batch, seeding the frontier from the mutation's footprint, with a
//!   proof obligation (monotone frontier programs only) that makes the
//!   result bit-identical to a from-scratch run.
//!
//! The read path lives in `gsd-graph`: [`gsd_graph::DeltaOverlay`] is
//! loaded by `GridGraph::open`, so every engine, the prefetch pipeline,
//! and the serve daemon observe base + delta as one logical grid with no
//! code changes of their own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod compact;
pub mod incremental;
pub mod ingest;

pub use batch::MutationBatch;
pub use compact::{compact, CompactReport};
pub use incremental::{incremental_run, IncrementalReport, SeededProgram};
pub use ingest::{ingest, IngestReport};
