//! Compaction: folding live delta segments into rewritten base sub-blocks.
//!
//! The merged edge list (read through the overlay) is re-derived into
//! fresh base payloads with [`gsd_graph::integrity::rebuild_payloads`]
//! and — before anything is written — **fingerprint-checked against a
//! full re-preprocess** of the same edge list into scratch memory
//! storage, pinned to the grid's existing interval boundaries. Byte
//! inequality anywhere aborts the pass with the grid untouched.
//!
//! Like `repair_grid`, the write-back is in-place maintenance, not a
//! crash-atomic commit: a crash mid-pass can leave rewritten payloads
//! next to a meta that still references the segments. That state is
//! *detectable* (the overlay loader verifies every base payload it
//! merges and fails loudly on mismatch) and the write order minimizes
//! the window — payloads first, then the emptied manifest, then the
//! resealed meta (epoch unchanged), then segment deletion. Run `gsd
//! scrub` after a suspect interruption.
//!
//! The epoch survives compaction on purpose: checkpoints are pinned to
//! the meta bytes, and the meta changes here anyway (new counts, new
//! checksums), so warm state from before the pass is conservatively
//! invalidated either way.

use gsd_graph::delta::{manifest_key, read_manifest, DeltaManifest};
use gsd_graph::format::GridMeta;
use gsd_graph::integrity::rebuild_payloads;
use gsd_graph::preprocess::{preprocess, PreprocessConfig};
use gsd_graph::{Graph, GridGraph, META_KEY};
use gsd_integrity::{fnv64, IntegritySection, ObjectEntry};
use gsd_io::{MemStorage, SharedStorage, Storage};
use gsd_trace::{TraceEvent, TraceSink};

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// What one compaction pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Epoch of the grid (unchanged by compaction).
    pub epoch: u64,
    /// Live segments folded and deleted.
    pub segments_folded: u64,
    /// Base objects whose bytes changed and were rewritten.
    pub objects_rewritten: u64,
    /// Bytes of rewritten objects.
    pub bytes_rewritten: u64,
    /// FNV-1a fingerprint over every (key, payload) of the rebuilt grid —
    /// equal by construction to the fingerprint of a full re-preprocess
    /// of the merged edge list.
    pub fingerprint: u64,
}

/// Deterministic fingerprint of a rebuilt object set: FNV-1a over
/// key/len/payload in key order.
fn payloads_fingerprint<'a>(objects: impl Iterator<Item = (&'a String, &'a Vec<u8>)>) -> u64 {
    let mut bytes = Vec::new();
    for (key, payload) in objects {
        bytes.extend_from_slice(key.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
    }
    fnv64(&bytes)
}

/// Folds every live delta segment of the grid under `prefix` into
/// rewritten base sub-blocks. Returns `None` when the grid has no live
/// segments (nothing to do — including grids that were never mutated).
pub fn compact(
    storage: &SharedStorage,
    prefix: &str,
    trace: &dyn TraceSink,
) -> std::io::Result<Option<CompactReport>> {
    // The overlay-merged view (meta patched to merged counts)...
    let grid = GridGraph::open_with_prefix(storage.clone(), prefix)?;
    if grid.overlay().is_none() {
        return Ok(None);
    }
    // ...and the raw on-disk meta (base counts, the state being replaced).
    let disk_meta = GridMeta::from_bytes(&storage.read_all(&format!("{prefix}{META_KEY}"))?)?;
    let manifest = read_manifest(storage.as_ref(), prefix, &disk_meta)?;
    let epoch = manifest.epoch;
    trace.emit(&TraceEvent::CompactionStarted {
        epoch,
        segments: manifest.segments.len() as u64,
        bytes: manifest.segments.total_bytes(),
    });

    // Collect the merged edge list through the overlay read path.
    let p = grid.p();
    let mut edges = Vec::with_capacity(grid.num_edges() as usize);
    let mut scratch = Vec::new();
    let mut block = Vec::new();
    for i in 0..p {
        for j in 0..p {
            grid.read_block_into(i, j, &mut scratch, &mut block)?;
            edges.extend_from_slice(&block);
        }
    }
    let graph = Graph::from_edges(grid.num_vertices(), edges, disk_meta.weighted);

    // Target meta: merged counts become the new base; epoch unchanged.
    let mut new_meta = disk_meta.clone();
    new_meta.num_edges = grid.meta().num_edges;
    new_meta.block_edge_counts = grid.meta().block_edge_counts.clone();
    let rebuilt = rebuild_payloads(&graph, &new_meta)?;

    // Fingerprint check: a full re-preprocess of the merged edge list,
    // pinned to the same boundaries and layout flags, must produce the
    // same bytes for every object. Nothing is written until it does.
    let mem = MemStorage::new();
    let scratch_config = PreprocessConfig {
        key_prefix: String::new(),
        num_intervals: None,
        memory_budget_bytes: None,
        degree_balanced: false,
        boundaries: Some(disk_meta.boundaries.clone()),
        sort_blocks: disk_meta.sorted,
        build_index: disk_meta.indexed,
        sort_by_dst: disk_meta.dst_sorted,
    };
    let (scratch_meta, _) = preprocess(&graph, &mem, &scratch_config)?;
    if scratch_meta.block_edge_counts != new_meta.block_edge_counts {
        return Err(invalid(
            "compaction produced different per-block edge counts than re-preprocessing",
        ));
    }
    for (key, payload) in &rebuilt {
        let fresh = mem.read_all(key)?;
        if &fresh != payload {
            return Err(invalid(format!(
                "compaction of {key:?} is not byte-identical to re-preprocessing \
                 the merged edge list; aborting with the grid untouched"
            )));
        }
    }
    let fingerprint = payloads_fingerprint(rebuilt.iter());

    // --- write-back: changed payloads first ---
    let base_section = disk_meta
        .integrity
        .as_ref()
        .ok_or_else(|| invalid("compaction requires a checksummed grid"))?;
    let mut objects_rewritten = 0u64;
    let mut bytes_rewritten = 0u64;
    let mut entries = Vec::with_capacity(rebuilt.len());
    for (key, payload) in &rebuilt {
        let entry = ObjectEntry::of(key, payload);
        if base_section.lookup(key) != Some(&entry) {
            storage.create(&format!("{prefix}{key}"), payload)?;
            objects_rewritten += 1;
            bytes_rewritten += payload.len() as u64;
        }
        entries.push(entry);
    }
    storage.sync()?;

    // --- the emptied manifest: merged now equals base ---
    let empty = DeltaManifest::empty(
        epoch,
        new_meta.num_edges,
        new_meta.block_edge_counts.clone(),
    );
    storage.create(&manifest_key(prefix, epoch), &empty.to_bytes())?;
    storage.sync()?;

    // --- the resealed meta: new counts, fresh checksums, same epoch ---
    new_meta.integrity = Some(IntegritySection::new(entries));
    new_meta.seal();
    storage.create(&format!("{prefix}{META_KEY}"), &new_meta.to_bytes())?;
    storage.sync()?;

    // --- cleanup: the folded segments are now unreferenced ---
    for entry in &manifest.segments.objects {
        storage.delete(&format!("{prefix}{}", entry.key))?;
    }

    trace.emit(&TraceEvent::CompactionFinished {
        epoch,
        blocks_rewritten: objects_rewritten,
        bytes: bytes_rewritten,
    });
    Ok(Some(CompactReport {
        epoch,
        segments_folded: manifest.segments.len() as u64,
        objects_rewritten,
        bytes_rewritten,
        fingerprint,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::MutationBatch;
    use crate::ingest::ingest;
    use gsd_graph::{GeneratorConfig, GraphKind};
    use gsd_io::Storage;
    use std::sync::Arc;

    fn setup(p: u32) -> (Graph, SharedStorage) {
        let g = GeneratorConfig::new(GraphKind::RMat, 120, 600, 9).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(
            &g,
            storage.as_ref(),
            &PreprocessConfig::graphsd("").with_intervals(p),
        )
        .unwrap();
        (g, storage)
    }

    #[test]
    fn compact_folds_segments_and_matches_full_preprocess() {
        let (g, storage) = setup(3);
        let sink = gsd_trace::null_sink();
        let mut batch = MutationBatch::new();
        batch.insert(0, 7, 1.0).delete(2, 1).insert(5, 5, 1.0);
        ingest(storage.as_ref(), "", &batch, sink.as_ref()).unwrap();

        let report = compact(&storage, "", sink.as_ref()).unwrap().unwrap();
        assert_eq!(report.epoch, 1);
        assert!(report.segments_folded >= 1);
        assert!(report.objects_rewritten >= 1);

        // Segments are gone; the grid opens with no overlay.
        assert!(storage.list_keys().iter().all(|k| !k.ends_with(".ops")));
        let grid = GridGraph::open(storage.clone()).unwrap();
        assert!(grid.overlay().is_none());
        assert_eq!(grid.delta_epoch(), 1);

        // The compacted grid equals a from-scratch preprocess of the
        // merged edge list, byte for byte on every data object.
        let mut edges = g.edges().to_vec();
        edges.retain(|e| !(e.src == 2 && e.dst == 1));
        edges.push(gsd_graph::Edge::new(0, 7));
        edges.push(gsd_graph::Edge::new(5, 5));
        let merged = Graph::from_edges(g.num_vertices(), edges, false);
        let mem = MemStorage::new();
        let boundaries = grid.meta().boundaries.clone();
        preprocess(
            &merged,
            &mem,
            &PreprocessConfig {
                boundaries: Some(boundaries),
                ..PreprocessConfig::graphsd("")
            },
        )
        .unwrap();
        for key in mem.list_keys() {
            if key == META_KEY {
                continue;
            }
            assert_eq!(
                storage.read_all(&key).unwrap(),
                mem.read_all(&key).unwrap(),
                "object {key:?} differs from a from-scratch preprocess"
            );
        }

        // Scrub passes on the compacted grid.
        let (_, scrub) = gsd_graph::scrub_grid(storage.as_ref(), "").unwrap();
        assert!(scrub.is_clean(), "{scrub:?}");
    }

    #[test]
    fn compact_without_segments_is_none() {
        let (_, storage) = setup(2);
        let sink = gsd_trace::null_sink();
        assert!(compact(&storage, "", sink.as_ref()).unwrap().is_none());
        // After ingest + compact, a second compact is also a no-op.
        let mut batch = MutationBatch::new();
        batch.insert(0, 1, 1.0);
        ingest(storage.as_ref(), "", &batch, sink.as_ref()).unwrap();
        assert!(compact(&storage, "", sink.as_ref()).unwrap().is_some());
        assert!(compact(&storage, "", sink.as_ref()).unwrap().is_none());
    }
}
