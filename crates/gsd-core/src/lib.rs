//! # gsd-core — the GraphSD engine (the paper's contribution)
//!
//! An out-of-core graph processing engine that reduces disk I/O by
//! simultaneously exploiting the **state** (active / inactive) and the
//! **dependency** (BSP `val_{t+1}(v) ← val_t(u)` along each edge `u→v`) of
//! graph data:
//!
//! * [`scheduler`] — the state-aware I/O scheduling strategy of §4.1:
//!   per iteration it computes the sequential/random split of the active
//!   edge lists in `O(|A|)` and compares the paper's cost estimates `C_r`
//!   vs `C_s` to choose the on-demand or the full I/O model.
//! * [`engine`] — the two adaptive update models of §4.2 driven by that
//!   choice: **SCIU** (selective cross-iteration update, Algorithm 2) reads
//!   only active edge lists and pre-scatters the next iteration's messages
//!   for re-activated vertices; **FCIU** (full cross-iteration update,
//!   Algorithm 3) streams the grid destination-major and covers two BSP
//!   iterations per full pass, re-reading only the lower-triangle
//!   "secondary" sub-blocks.
//! * [`buffer`] — the priority buffer of §4.3 that caches secondary
//!   sub-blocks between the two FCIU passes (priority = active edges).
//! * [`config`] — engine options, including the ablation switches used by
//!   the paper's §5.4 experiments (`b1` no cross-iteration, `b2`/`b3`
//!   always-full, `b4` always-on-demand, buffering on/off).
//!
//! The engine commits, per BSP iteration, exactly the values the
//! [`gsd_runtime::ReferenceEngine`] commits — cross-iteration propagation
//! is an I/O optimization, never a semantic relaxation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod config;
pub mod engine;
pub mod scheduler;
pub mod session;

/// Maps the runtime's access-model enum onto the trace schema's (the
/// trace crate sits below `gsd-runtime` and cannot name it).
pub(crate) fn trace_model(model: gsd_runtime::IoAccessModel) -> gsd_trace::AccessModel {
    match model {
        gsd_runtime::IoAccessModel::OnDemand => gsd_trace::AccessModel::OnDemand,
        gsd_runtime::IoAccessModel::Full => gsd_trace::AccessModel::Full,
    }
}

pub use buffer::SubBlockBuffer;
pub use config::GraphSdConfig;
pub use engine::GraphSdEngine;
// Re-exported so callers configuring `GraphSdConfig::prefetch` /
// `GraphSdConfig::checkpoint` do not need direct `gsd-pipeline` /
// `gsd-recover` dependencies.
pub use gsd_pipeline::PipelineConfig;
pub use gsd_recover::RecoveryConfig;
pub use scheduler::{Scheduler, SchedulerDecision};
pub use session::GridSession;
