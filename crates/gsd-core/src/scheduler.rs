//! The state-aware I/O scheduling strategy (§4.1).
//!
//! Before each iteration the scheduler estimates, from the active vertex
//! set `A` and the degree table, the byte volume of active edge lists that
//! would be read sequentially (`S_seq`: coalesced runs of contiguous vertex
//! ids, and single high-degree vertices, whose edge ranges stream) versus
//! randomly (`S_ran`), in a single `O(|A|)` pass. It then compares the
//! paper's cost formulas — `C_r` (on-demand) against `C_s` (full) — and
//! picks the cheaper access model. The evaluation time is accounted
//! separately (`overhead`) because Figure 11 reports it against the I/O
//! time the decisions save.
//!
//! On a mutated grid (format v4, live delta segments) every input the
//! model consumes is already the **merged** shape: `GridGraph` patches
//! `num_edges`, the per-block edge counts, and the out-degree table at
//! open, so `S_seq`/`S_ran` and the `C_r`/`C_s` comparison price the
//! graph the engines will actually read — the scheduler needs no
//! delta-awareness of its own.

use gsd_io::{DiskModel, IoCostModel, OnDemandCostInputs};
use gsd_runtime::{Frontier, IoAccessModel};
use gsd_trace::Stopwatch;
use gsd_trace::{TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// One scheduling decision (per iteration), kept for the Figure 10/11
/// experiments and for debugging.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedulerDecision {
    /// Iteration the decision was made for.
    pub iteration: u32,
    /// Active vertex count `|A|`.
    pub frontier: u64,
    /// Bytes of active edge lists classified sequential.
    pub s_seq: u64,
    /// Bytes of active edge lists classified random.
    pub s_ran: u64,
    /// Estimated cost of the full model, seconds (`C_s`).
    pub cost_full: f64,
    /// Estimated cost of the on-demand model, seconds (`C_r`).
    pub cost_on_demand: f64,
    /// The chosen model.
    pub model: IoAccessModel,
}

/// The scheduler: owns the cost model and the decision log.
pub struct Scheduler {
    cost: IoCostModel,
    per_edge_bytes: u64,
    seq_run_threshold: u64,
    trace: Arc<dyn TraceSink>,
    /// Cumulative benefit-evaluation time (Figure 11's overhead).
    pub overhead: Duration,
    /// All decisions taken this run.
    pub decisions: Vec<SchedulerDecision>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cost", &self.cost)
            .field("per_edge_bytes", &self.per_edge_bytes)
            .field("seq_run_threshold", &self.seq_run_threshold)
            .field("overhead", &self.overhead)
            .field("decisions", &self.decisions.len())
            .finish()
    }
}

impl Scheduler {
    /// Builds a scheduler for a graph with `vertex_value_bytes` (`|V|·N`)
    /// of vertex data and `total_edge_bytes` (`|E|·(M+W)`) of edge data,
    /// `per_edge_bytes` per edge, on a disk described by `disk`.
    pub fn new(
        disk: DiskModel,
        vertex_value_bytes: u64,
        total_edge_bytes: u64,
        per_edge_bytes: u64,
        seq_run_threshold: u64,
    ) -> Self {
        Scheduler {
            cost: IoCostModel::new(disk, vertex_value_bytes, total_edge_bytes),
            per_edge_bytes,
            seq_run_threshold,
            trace: gsd_trace::null_sink(),
            overhead: Duration::ZERO,
            decisions: Vec::new(),
        }
    }

    /// Routes [`TraceEvent::SchedulerDecision`] events to `trace`.
    pub fn set_trace(&mut self, trace: Arc<dyn TraceSink>) {
        self.trace = trace;
    }

    /// Splits the active edge volume into sequential and random bytes in
    /// one pass over the (sorted) frontier: runs of consecutive vertex ids
    /// accumulate; a run of at least `seq_run_threshold` bytes — including
    /// a single high-degree vertex — streams, anything smaller seeks.
    pub fn seq_ran_split(&self, frontier: &Frontier, degrees: &[u32]) -> OnDemandCostInputs {
        let mut inputs = OnDemandCostInputs::default();
        let mut run_bytes = 0u64;
        let mut prev: Option<u32> = None;
        let flush = |run: u64, inputs: &mut OnDemandCostInputs| {
            if run == 0 {
                return;
            }
            if run >= self.seq_run_threshold {
                inputs.seq_edge_bytes += run;
            } else {
                inputs.rand_edge_bytes += run;
            }
        };
        for v in frontier.iter() {
            let bytes = degrees[v as usize] as u64 * self.per_edge_bytes;
            match prev {
                Some(p) if p + 1 == v => run_bytes += bytes,
                _ => {
                    flush(run_bytes, &mut inputs);
                    run_bytes = bytes;
                }
            }
            prev = Some(v);
        }
        flush(run_bytes, &mut inputs);
        inputs
    }

    /// The benefit evaluation: chooses the I/O access model for
    /// `iteration`, logging the decision and accounting the evaluation
    /// time as overhead.
    pub fn select(
        &mut self,
        iteration: u32,
        frontier: &Frontier,
        degrees: &[u32],
    ) -> IoAccessModel {
        let started = Stopwatch::start();
        let inputs = self.seq_ran_split(frontier, degrees);
        let cost_full = self.cost.full_cost().total();
        let cost_on_demand = self.cost.on_demand_cost(inputs).total();
        let model = if cost_on_demand <= cost_full {
            IoAccessModel::OnDemand
        } else {
            IoAccessModel::Full
        };
        self.overhead += started.elapsed();
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::SchedulerDecision {
                iteration,
                s_seq: inputs.seq_edge_bytes,
                s_ran: inputs.rand_edge_bytes,
                cost_full,
                cost_on_demand,
                chosen: crate::trace_model(model),
            });
        }
        self.decisions.push(SchedulerDecision {
            iteration,
            frontier: frontier.count(),
            s_seq: inputs.seq_edge_bytes,
            s_ran: inputs.rand_edge_bytes,
            cost_full,
            cost_on_demand,
            model,
        });
        model
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &IoCostModel {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler() -> Scheduler {
        // 1M vertices x 4B, 80MB edges, 8B/edge, 256KB run threshold.
        Scheduler::new(DiskModel::hdd(), 4_000_000, 80_000_000, 8, 256 << 10)
    }

    #[test]
    fn split_classifies_contiguous_runs_as_sequential() {
        let s = scheduler();
        // 100k contiguous vertices of degree 50: one 40MB run.
        let n = 1_000_000u32;
        let degrees = vec![50u32; n as usize];
        let frontier = Frontier::empty(n);
        for v in 0..100_000 {
            frontier.insert(v);
        }
        let inputs = s.seq_ran_split(&frontier, &degrees);
        assert_eq!(inputs.seq_edge_bytes, 100_000 * 50 * 8);
        assert_eq!(inputs.rand_edge_bytes, 0);
    }

    #[test]
    fn split_classifies_scattered_vertices_as_random() {
        let s = scheduler();
        let n = 1_000_000u32;
        let degrees = vec![50u32; n as usize];
        let frontier = Frontier::empty(n);
        for k in 0..1000 {
            frontier.insert(k * 997); // scattered
        }
        let inputs = s.seq_ran_split(&frontier, &degrees);
        assert_eq!(inputs.rand_edge_bytes, 1000 * 50 * 8);
        assert_eq!(inputs.seq_edge_bytes, 0);
    }

    #[test]
    fn single_hub_counts_as_sequential() {
        let s = scheduler();
        let n = 1_000u32;
        let mut degrees = vec![1u32; n as usize];
        degrees[7] = 100_000; // 800 KB of edges: one streaming read
        let frontier = Frontier::from_seeds(n, &[7]);
        let inputs = s.seq_ran_split(&frontier, &degrees);
        assert_eq!(inputs.seq_edge_bytes, 800_000);
        assert_eq!(inputs.rand_edge_bytes, 0);
    }

    #[test]
    fn small_frontier_selects_on_demand_large_selects_full() {
        let mut s = scheduler();
        let n = 1_000_000u32;
        let degrees = vec![10u32; n as usize];
        let small = Frontier::from_seeds(n, &[1, 5000, 100_000]);
        assert_eq!(s.select(1, &small, &degrees), IoAccessModel::OnDemand);

        let big = Frontier::empty(n);
        for k in 0..300_000 {
            big.insert(((k * 7) % n as u64) as u32); // scattered, 300k actives
        }
        assert_eq!(s.select(2, &big, &degrees), IoAccessModel::Full);
        assert_eq!(s.decisions.len(), 2);
        assert!(s.decisions[0].cost_on_demand <= s.decisions[0].cost_full);
        assert!(s.decisions[1].cost_on_demand > s.decisions[1].cost_full);
    }

    #[test]
    fn overhead_accumulates() {
        let mut s = scheduler();
        let n = 10_000u32;
        let degrees = vec![5u32; n as usize];
        let f = Frontier::full(n);
        for it in 0..5 {
            s.select(it, &f, &degrees);
        }
        assert!(s.overhead > Duration::ZERO);
        assert_eq!(s.decisions.len(), 5);
    }

    #[test]
    fn empty_frontier_costs_nothing_on_demand() {
        let mut s = scheduler();
        let degrees = vec![5u32; 100];
        let f = Frontier::empty(100);
        assert_eq!(s.select(1, &f, &degrees), IoAccessModel::OnDemand);
        let d = s.decisions[0];
        assert_eq!(d.s_seq + d.s_ran, 0);
    }
}
