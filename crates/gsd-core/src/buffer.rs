//! The sub-block buffering scheme (§4.3).
//!
//! FCIU loads the lower-triangle "secondary" sub-blocks twice per round
//! (once per pass) and their structure never changes, so caching them
//! avoids the second load. Memory is scarce (the 5 % budget) and most
//! secondary blocks may hold few active edges after the first pass, so the
//! buffer keeps the blocks with the **most active edges**: an insert that
//! does not fit evicts the lowest-priority residents, but only while their
//! priority is strictly lower than the newcomer's.

use gsd_graph::Edge;
use gsd_trace::{TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

struct Entry {
    edges: Arc<Vec<Edge>>,
    bytes: u64,
    priority: u64,
}

/// Priority cache of decoded secondary sub-blocks, keyed by `(i, j)`.
pub struct SubBlockBuffer {
    capacity: u64,
    used: u64,
    entries: BTreeMap<(u32, u32), Entry>,
    trace: Arc<dyn TraceSink>,
    /// Number of reads served from the buffer.
    pub hits: u64,
    /// Bytes of storage reads avoided.
    pub hit_bytes: u64,
    /// Residents evicted to make room.
    pub evictions: u64,
}

impl SubBlockBuffer {
    /// A buffer holding at most `capacity` bytes of block payloads.
    pub fn new(capacity: u64) -> Self {
        SubBlockBuffer {
            capacity,
            used: 0,
            entries: BTreeMap::new(),
            trace: gsd_trace::null_sink(),
            hits: 0,
            hit_bytes: 0,
            evictions: 0,
        }
    }

    /// Routes [`TraceEvent::BufferHit`] / [`TraceEvent::BufferEviction`]
    /// events to `trace`.
    pub fn set_trace(&mut self, trace: Arc<dyn TraceSink>) {
        self.trace = trace;
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up block `(i, j)`, counting a hit on success.
    pub fn get(&mut self, i: u32, j: u32) -> Option<Arc<Vec<Edge>>> {
        let e = self.entries.get(&(i, j))?;
        self.hits += 1;
        self.hit_bytes += e.bytes;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::BufferHit {
                i,
                j,
                bytes: e.bytes,
            });
        }
        Some(e.edges.clone())
    }

    /// Looks up without counting a hit (used by tests/diagnostics).
    pub fn peek(&self, i: u32, j: u32) -> Option<Arc<Vec<Edge>>> {
        self.entries.get(&(i, j)).map(|e| e.edges.clone())
    }

    /// Whether block `(i, j)` is resident, without counting a hit (used
    /// by the engine to plan a pass's prefetch schedule).
    pub fn contains(&self, i: u32, j: u32) -> bool {
        self.entries.contains_key(&(i, j))
    }

    /// Offers block `(i, j)` with the given payload size and priority
    /// (= number of active edges observed in the first FCIU pass).
    /// Returns `true` if the block is resident afterwards.
    ///
    /// A re-offer of a resident block replaces the payload and refreshes
    /// the priority — the caller's decode is newer than what is resident,
    /// and `used` must track the new size. Otherwise lower-priority
    /// residents are evicted while the block does not fit; if the
    /// remaining residents all have priority ≥ the newcomer's, the offer
    /// is declined (a grown re-offer that no longer fits is dropped
    /// rather than kept stale).
    pub fn offer(
        &mut self,
        i: u32,
        j: u32,
        edges: Arc<Vec<Edge>>,
        bytes: u64,
        priority: u64,
    ) -> bool {
        if let Some(old) = self.entries.remove(&(i, j)) {
            self.used -= old.bytes;
        }
        if bytes > self.capacity {
            return false;
        }
        while self.used + bytes > self.capacity {
            // The residency map is a `BTreeMap`, so this scan visits
            // candidates in coordinate order and ties on priority break
            // toward the smallest coordinates — a timing-free victim
            // choice is what keeps accounted I/O bit-identical across
            // repeats (the bench harness gates on it).
            let victim = self
                .entries
                .iter()
                .min_by_key(|(&k, e)| (e.priority, k))
                .map(|(&k, e)| (k, e.priority, e.bytes));
            match victim {
                Some((k, vprio, vbytes)) if vprio < priority => {
                    self.entries.remove(&k);
                    self.used -= vbytes;
                    self.evictions += 1;
                    if self.trace.enabled() {
                        self.trace.emit(&TraceEvent::BufferEviction {
                            i: k.0,
                            j: k.1,
                            bytes: vbytes,
                        });
                    }
                }
                _ => return false,
            }
        }
        self.used += bytes;
        self.entries.insert(
            (i, j),
            Entry {
                edges,
                bytes,
                priority,
            },
        );
        true
    }

    /// Snapshot of the resident set as `(i, j, bytes, priority)`, sorted
    /// by coordinates. Used by checkpointing to record residency so a
    /// resumed run rebuilds the same buffer (payloads are re-read from the
    /// grid; only identity, size and priority need to be recorded).
    pub fn residents(&self) -> Vec<(u32, u32, u64, u64)> {
        let mut out: Vec<(u32, u32, u64, u64)> = self
            .entries
            .iter()
            .map(|(&(i, j), e)| (i, j, e.bytes, e.priority))
            .collect();
        out.sort_unstable();
        out
    }

    /// Drops everything (between runs).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

impl std::fmt::Debug for SubBlockBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubBlockBuffer")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("blocks", &self.entries.len())
            .field("hits", &self.hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Vec<Edge>> {
        Arc::new(vec![Edge::new(0, 1); n])
    }

    #[test]
    fn insert_and_hit() {
        let mut b = SubBlockBuffer::new(1000);
        assert!(b.offer(0, 1, block(4), 100, 7));
        assert_eq!(b.used(), 100);
        assert!(b.get(0, 1).is_some());
        assert_eq!(b.hits, 1);
        assert_eq!(b.hit_bytes, 100);
        assert!(b.get(0, 2).is_none());
        assert_eq!(b.hits, 1);
    }

    #[test]
    fn oversized_block_is_declined() {
        let mut b = SubBlockBuffer::new(100);
        assert!(!b.offer(0, 1, block(4), 200, 99));
        assert!(b.is_empty());
    }

    #[test]
    fn evicts_lowest_priority_first() {
        let mut b = SubBlockBuffer::new(250);
        assert!(b.offer(1, 0, block(1), 100, 5));
        assert!(b.offer(2, 0, block(1), 100, 10));
        // 100 bytes free; newcomer needs 200: must evict the prio-5 block,
        // and the prio-10 block survives only if it doesn't need to go.
        assert!(b.offer(3, 0, block(1), 150, 8));
        assert!(b.peek(1, 0).is_none(), "prio 5 evicted");
        assert!(b.peek(2, 0).is_some(), "prio 10 kept");
        assert!(b.peek(3, 0).is_some());
        assert_eq!(b.evictions, 1);
        assert_eq!(b.used(), 250);
    }

    #[test]
    fn declines_when_residents_have_higher_priority() {
        let mut b = SubBlockBuffer::new(200);
        assert!(b.offer(1, 0, block(1), 100, 50));
        assert!(b.offer(2, 0, block(1), 100, 60));
        assert!(
            !b.offer(3, 0, block(1), 100, 10),
            "lower priority cannot displace"
        );
        assert_eq!(b.len(), 2);
        assert_eq!(b.evictions, 0);
    }

    #[test]
    fn reoffer_refreshes_priority() {
        let mut b = SubBlockBuffer::new(200);
        assert!(b.offer(1, 0, block(1), 100, 1));
        assert!(b.offer(1, 0, block(1), 100, 99));
        assert_eq!(b.used(), 100, "no double charge");
        // Now a prio-50 newcomer cannot evict it.
        assert!(!b.offer(2, 0, block(1), 200, 50));
    }

    #[test]
    fn reoffer_replaces_payload_and_recounts_bytes() {
        let mut b = SubBlockBuffer::new(400);
        assert!(b.offer(1, 0, block(2), 100, 5));
        // Re-offer with a different decode: the resident payload and its
        // byte charge must both update, not just the priority.
        assert!(b.offer(1, 0, block(3), 150, 7));
        assert_eq!(b.used(), 150, "used tracks the new size");
        let resident = b.peek(1, 0).expect("still resident");
        assert_eq!(resident.len(), 3, "payload is the latest decode");
        // A shrink hands capacity back.
        assert!(b.offer(1, 0, block(1), 50, 7));
        assert_eq!(b.used(), 50);
    }

    #[test]
    fn grown_reoffer_that_no_longer_fits_is_dropped() {
        let mut b = SubBlockBuffer::new(200);
        assert!(b.offer(1, 0, block(1), 100, 5));
        assert!(b.offer(2, 0, block(1), 100, 50));
        // (1, 0) grows past what eviction can free: the prio-50 resident
        // outranks the re-offer, so the block leaves the buffer entirely
        // instead of staying resident with a stale payload.
        assert!(!b.offer(1, 0, block(4), 150, 5));
        assert!(b.peek(1, 0).is_none());
        assert!(b.peek(2, 0).is_some());
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn clear_resets_usage_but_keeps_counters() {
        let mut b = SubBlockBuffer::new(100);
        b.offer(0, 1, block(1), 50, 1);
        b.get(0, 1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.used(), 0);
        assert_eq!(b.hits, 1, "hit counters are per-run stats, kept");
    }

    #[test]
    fn multi_eviction_for_large_newcomer() {
        let mut b = SubBlockBuffer::new(300);
        b.offer(1, 0, block(1), 100, 1);
        b.offer(2, 0, block(1), 100, 2);
        b.offer(3, 0, block(1), 100, 3);
        assert!(b.offer(4, 0, block(1), 250, 10));
        // 250 bytes only fit after all three 100-byte residents are gone
        // (100 + 250 > 300).
        assert_eq!(b.evictions, 3);
        assert!(b.peek(3, 0).is_none());
        assert!(b.peek(4, 0).is_some());
        assert_eq!(b.used(), 250);
    }
}
