//! A reusable, open-once handle over a preprocessed grid.
//!
//! Every front end used to repeat the same dance: open storage, read and
//! parse the grid metadata, resolve the verification policy, wire the
//! integrity manifest, then build an engine. [`GridSession`] does that
//! dance exactly once and hands out cheap engine instances on demand —
//! `gsd run` builds one engine and exits, `gsd bench` rebuilds an engine
//! per repeat over the same session, and the `gsd serve` daemon keeps one
//! session resident for its whole lifetime and builds engines only for
//! full analytic queries.
//!
//! Because [`GridGraph`] is a cheap cloneable handle whose verifier memo
//! is shared across clones, every engine built from one session pools one
//! set of verification counters and one already-verified-object memo: the
//! manifest is read and checked once per session, not once per engine.

use crate::{GraphSdConfig, GraphSdEngine};
use gsd_graph::{CorruptionResponse, GridGraph, GridMeta, VerifyPolicy};
use gsd_io::SharedStorage;

/// An opened (and optionally verified) grid, ready to build engines.
pub struct GridSession {
    grid: GridGraph,
}

impl GridSession {
    /// Opens the grid at the root of `storage` with an explicit
    /// verification policy. [`VerifyPolicy::Off`] skips manifest wiring
    /// entirely; anything else requires a format v2 grid.
    pub fn open(
        storage: SharedStorage,
        policy: VerifyPolicy,
        response: CorruptionResponse,
    ) -> std::io::Result<Self> {
        Self::open_with_prefix(storage, "", policy, response)
    }

    /// Opens the grid under `prefix` in `storage` with an explicit
    /// verification policy.
    pub fn open_with_prefix(
        storage: SharedStorage,
        prefix: &str,
        policy: VerifyPolicy,
        response: CorruptionResponse,
    ) -> std::io::Result<Self> {
        let mut grid = GridGraph::open_with_prefix(storage, prefix)?;
        if !policy.is_off() {
            grid.set_verification(policy, response)?;
        }
        Ok(GridSession { grid })
    }

    /// Opens the grid at the root of `storage`, resolving the
    /// verification policy from the `GSD_VERIFY` / `GSD_ON_CORRUPTION`
    /// environment (the default every CLI path shares). Unset means no
    /// verification, byte-for-byte identical to the unverified path.
    pub fn open_env(storage: SharedStorage) -> std::io::Result<Self> {
        Self::open(
            storage,
            VerifyPolicy::from_env().unwrap_or(VerifyPolicy::Off),
            CorruptionResponse::from_env().unwrap_or_default(),
        )
    }

    /// Wraps an already-opened grid handle (callers that configured
    /// verification themselves).
    pub fn from_grid(grid: GridGraph) -> Self {
        GridSession { grid }
    }

    /// The session's grid handle.
    pub fn grid(&self) -> &GridGraph {
        &self.grid
    }

    /// Re-opens the grid from its backing storage, preserving the current
    /// verification policy. The serve daemon calls this after committing
    /// a mutation epoch so every subsequent query (and engine) sees the
    /// new delta overlay; previously built engines keep the old handle,
    /// which is exactly the epoch-consistency contract.
    pub fn reopen(&mut self) -> std::io::Result<()> {
        let (policy, response) = match self.grid.verifier() {
            Some(v) => (v.policy(), v.response()),
            None => (VerifyPolicy::Off, CorruptionResponse::default()),
        };
        let storage = self.grid.storage().clone();
        let prefix = self.grid.prefix().to_owned();
        let mut grid = GridGraph::open_with_prefix(storage, &prefix)?;
        if !policy.is_off() {
            grid.set_verification(policy, response)?;
        }
        self.grid = grid;
        Ok(())
    }

    /// The grid metadata.
    pub fn meta(&self) -> &GridMeta {
        self.grid.meta()
    }

    /// Builds a GraphSD engine over this session's grid. The clone shares
    /// the session's storage, metadata and verifier memo, so the grid is
    /// *not* re-opened or re-verified.
    pub fn engine(&self, config: GraphSdConfig) -> std::io::Result<GraphSdEngine> {
        GraphSdEngine::new(self.grid.clone(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsd_graph::{preprocess, GeneratorConfig, GraphKind, PreprocessConfig};
    use gsd_io::MemStorage;
    use std::sync::Arc;

    fn tiny_session() -> GridSession {
        let graph = GeneratorConfig::new(GraphKind::ErdosRenyi, 40, 160, 7).generate();
        let storage: SharedStorage = Arc::new(MemStorage::new());
        preprocess(&graph, storage.as_ref(), &PreprocessConfig::graphsd("")).unwrap();
        GridSession::open(storage, VerifyPolicy::Off, CorruptionResponse::default()).unwrap()
    }

    #[test]
    fn session_opens_once_and_builds_many_engines() {
        let session = tiny_session();
        assert_eq!(session.meta().num_vertices, 40);
        let e1 = session.engine(GraphSdConfig::full()).unwrap();
        let e2 = session.engine(GraphSdConfig::b3_always_full()).unwrap();
        drop((e1, e2));
        // The session's handle is still usable after engines are built.
        assert_eq!(session.grid().p(), session.meta().p);
    }

    #[test]
    fn engines_from_one_session_commit_identical_results() {
        use gsd_algos::PageRank;
        use gsd_runtime::{Engine, RunOptions};
        let session = tiny_session();
        let mut a = session.engine(GraphSdConfig::full()).unwrap();
        let mut b = session.engine(GraphSdConfig::full()).unwrap();
        let ra = a.run(&PageRank::paper(), &RunOptions::default()).unwrap();
        let rb = b.run(&PageRank::paper(), &RunOptions::default()).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ra.values), bits(&rb.values));
    }
}
