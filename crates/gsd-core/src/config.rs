//! Engine configuration, including the paper's §5.4 ablation switches.

use gsd_io::DiskModel;
use gsd_pipeline::PipelineConfig;
use gsd_recover::RecoveryConfig;
use gsd_runtime::IoAccessModel;

/// GraphSD engine options.
///
/// The defaults are the full system as published. The §5.4 baselines are
/// single-switch ablations:
///
/// | Paper id | Meaning                       | Constructor |
/// |----------|-------------------------------|-------------|
/// | b1       | no cross-iteration update     | [`GraphSdConfig::b1_no_cross_iteration`] |
/// | b2       | no selective update           | [`GraphSdConfig::b2_no_selective`] |
/// | b3       | full I/O model always         | [`GraphSdConfig::b3_always_full`] |
/// | b4       | on-demand I/O model always    | [`GraphSdConfig::b4_always_on_demand`] |
#[derive(Debug, Clone)]
pub struct GraphSdConfig {
    /// Memory budget in bytes for buffering; `None` uses the paper's
    /// setting of 5 % of the graph's edge bytes.
    pub memory_budget: Option<u64>,
    /// Allow the on-demand I/O model / SCIU (`false` reproduces `b2`).
    pub enable_selective: bool,
    /// Allow cross-iteration value propagation (`false` reproduces `b1`).
    pub enable_cross_iter: bool,
    /// Pin the I/O access model instead of consulting the scheduler
    /// (`Some(Full)` = `b3`, `Some(OnDemand)` = `b4`).
    pub force_model: Option<IoAccessModel>,
    /// Buffer secondary sub-blocks between the two FCIU passes (§4.3).
    pub enable_buffering: bool,
    /// Coalesced active-edge runs of at least this many bytes count as
    /// sequential (`S_seq`) in the scheduler's cost inputs. `None` derives
    /// the break-even run size from the disk model
    /// (`seek_latency × B_sr` — the run length whose transfer time equals
    /// one seek).
    pub seq_run_threshold: Option<u64>,
    /// Disk model for the cost estimates; `None` asks the storage backend
    /// (a simulator knows its own model) and falls back to
    /// [`DiskModel::hdd`].
    pub disk_model: Option<DiskModel>,
    /// Prefetch pipeline sizing, or `None` for fully synchronous reads.
    /// The default consults the `GSD_PREFETCH*` environment variables
    /// (see [`PipelineConfig::from_env`]) so a whole test suite can flip
    /// prefetching on without code changes. Results are bit-identical
    /// either way; only wall time changes.
    pub prefetch: Option<PipelineConfig>,
    /// Iteration-granular checkpointing and crash recovery, or `None` to
    /// run unprotected. The default consults the `GSD_CKPT_*` environment
    /// variables (see [`RecoveryConfig::from_env`]). Like prefetching,
    /// checkpointing is contractually result-neutral: a run that resumes
    /// from a checkpoint commits bit-identical values, iteration counts
    /// and I/O accounting to an uninterrupted run (checkpoint traffic is
    /// excluded from the run's `stats.io`).
    pub checkpoint: Option<RecoveryConfig>,
}

impl Default for GraphSdConfig {
    fn default() -> Self {
        GraphSdConfig {
            memory_budget: None,
            enable_selective: true,
            enable_cross_iter: true,
            force_model: None,
            enable_buffering: true,
            seq_run_threshold: None,
            disk_model: None,
            prefetch: PipelineConfig::from_env(),
            checkpoint: RecoveryConfig::from_env(),
        }
    }
}

impl GraphSdConfig {
    /// The full system (paper defaults).
    pub fn full() -> Self {
        Self::default()
    }

    /// §5.4 `GraphSD-b1`: cross-iteration vertex update disabled — only
    /// current-iteration values are computed.
    pub fn b1_no_cross_iteration() -> Self {
        GraphSdConfig {
            enable_cross_iter: false,
            ..Self::default()
        }
    }

    /// §5.4 `GraphSD-b2`: selective vertex update disabled — all
    /// sub-blocks are loaded regardless of the number of active vertices.
    pub fn b2_no_selective() -> Self {
        GraphSdConfig {
            enable_selective: false,
            ..Self::default()
        }
    }

    /// §5.4 `GraphSD-b3`: the full I/O model for all iterations.
    pub fn b3_always_full() -> Self {
        GraphSdConfig {
            force_model: Some(IoAccessModel::Full),
            ..Self::default()
        }
    }

    /// §5.4 `GraphSD-b4`: the on-demand I/O model for all iterations.
    pub fn b4_always_on_demand() -> Self {
        GraphSdConfig {
            force_model: Some(IoAccessModel::OnDemand),
            ..Self::default()
        }
    }

    /// §5.4 Figure 12 baseline: buffering disabled.
    pub fn without_buffering() -> Self {
        GraphSdConfig {
            enable_buffering: false,
            ..Self::default()
        }
    }

    /// Sets the memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the disk model used for cost estimates.
    pub fn with_disk_model(mut self, model: DiskModel) -> Self {
        self.disk_model = Some(model);
        self
    }

    /// Enables the background prefetch pipeline with the given sizing.
    pub fn with_prefetch(mut self, pipeline: PipelineConfig) -> Self {
        self.prefetch = Some(pipeline);
        self
    }

    /// Forces fully synchronous reads regardless of the environment.
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = None;
        self
    }

    /// Enables iteration-granular checkpointing with the given recovery
    /// options.
    pub fn with_checkpoint(mut self, recovery: RecoveryConfig) -> Self {
        self.checkpoint = Some(recovery);
        self
    }

    /// Disables checkpointing regardless of the environment.
    pub fn without_checkpoint(mut self) -> Self {
        self.checkpoint = None;
        self
    }

    /// Resolves the memory budget for a graph with `edge_bytes` of edges:
    /// explicit setting, or the paper's 5 %.
    pub fn budget_for(&self, edge_bytes: u64) -> u64 {
        self.memory_budget.unwrap_or(edge_bytes / 20)
    }

    /// Fingerprint of the fields that determine a run's committed results
    /// and I/O schedule, used to pin checkpoints to a configuration
    /// (see [`gsd_recover::ManifestTag::config_hash`]). Knobs that are
    /// contractually result-neutral — prefetch sizing and the checkpoint
    /// options themselves — are deliberately excluded: resuming with a
    /// different cadence or with prefetching toggled is sound.
    pub fn semantic_hash(&self) -> u64 {
        let semantic = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.memory_budget,
            self.enable_selective,
            self.enable_cross_iter,
            self.force_model,
            self.enable_buffering,
            self.seq_run_threshold,
            self.disk_model,
        );
        gsd_recover::fnv64(semantic.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_full_system() {
        let c = GraphSdConfig::default();
        assert!(c.enable_selective && c.enable_cross_iter && c.enable_buffering);
        assert!(c.force_model.is_none());
    }

    #[test]
    fn ablations_flip_one_switch_each() {
        assert!(!GraphSdConfig::b1_no_cross_iteration().enable_cross_iter);
        assert!(GraphSdConfig::b1_no_cross_iteration().enable_selective);
        assert!(!GraphSdConfig::b2_no_selective().enable_selective);
        assert!(GraphSdConfig::b2_no_selective().enable_cross_iter);
        assert_eq!(
            GraphSdConfig::b3_always_full().force_model,
            Some(IoAccessModel::Full)
        );
        assert_eq!(
            GraphSdConfig::b4_always_on_demand().force_model,
            Some(IoAccessModel::OnDemand)
        );
        assert!(!GraphSdConfig::without_buffering().enable_buffering);
    }

    #[test]
    fn prefetch_helpers_toggle_the_pipeline() {
        let c = GraphSdConfig::default().with_prefetch(PipelineConfig::with_depth(4));
        assert_eq!(c.prefetch.map(|p| p.depth), Some(4));
        assert!(c.without_prefetch().prefetch.is_none());
    }

    #[test]
    fn checkpoint_helpers_toggle_recovery() {
        let c = GraphSdConfig::default().with_checkpoint(RecoveryConfig::every(2));
        assert_eq!(c.checkpoint.as_ref().map(|r| r.every), Some(2));
        assert!(c.without_checkpoint().checkpoint.is_none());
    }

    #[test]
    fn semantic_hash_ignores_result_neutral_knobs() {
        let base = GraphSdConfig::full()
            .without_prefetch()
            .without_checkpoint();
        let with_neutral = GraphSdConfig::full()
            .with_prefetch(PipelineConfig::with_depth(4))
            .with_checkpoint(RecoveryConfig::every(1));
        assert_eq!(base.semantic_hash(), with_neutral.semantic_hash());
        assert_ne!(
            base.semantic_hash(),
            GraphSdConfig::b1_no_cross_iteration().semantic_hash()
        );
        assert_ne!(
            base.semantic_hash(),
            GraphSdConfig::full()
                .with_memory_budget(123)
                .semantic_hash()
        );
    }

    #[test]
    fn budget_defaults_to_five_percent() {
        let c = GraphSdConfig::default();
        assert_eq!(c.budget_for(2_000_000), 100_000);
        let c = c.with_memory_budget(12345);
        assert_eq!(c.budget_for(2_000_000), 12345);
    }
}
