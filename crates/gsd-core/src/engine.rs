//! The GraphSD engine: Algorithm 1's driver loop plus the SCIU
//! (Algorithm 2) and FCIU (Algorithm 3) update models.
//!
//! ## State layout
//!
//! The engine keeps double-buffered committed values (`values_prev` =
//! `val_{t−1}` read by normal scatter; `values_cur` = `val_t` written by
//! `apply` and read by cross-iteration scatter) and double-buffered
//! accumulators (`accum_cur` for the iteration being computed, `accum_next`
//! receiving cross-iteration contributions for the following one). At the
//! end of each committed iteration the pairs rotate. This realizes the
//! paper's BSP guarantee: a cross-iteration update of edge `(u, v)` always
//! reads `val_t(u)` — the same value a normal iteration-`t+1` scatter would
//! read — so committed values are schedule-identical to the reference
//! executor's.
//!
//! ## Frontier bookkeeping (Algorithm 1)
//!
//! `frontier` is `V_active`; the `out` set built by `apply` is the next
//! frontier; SCIU removes vertices it fully served by cross-iteration
//! propagation (their edges were in memory, so they need not be re-read),
//! and the pre-seeded accumulator (`accum_next` + `touched_next`) plays the
//! role of `OutNI`: its recipients are examined by `apply` at the end of
//! the next iteration.

use crate::buffer::SubBlockBuffer;
use crate::config::GraphSdConfig;
use crate::scheduler::{Scheduler, SchedulerDecision};
use gsd_graph::{Edge, GridGraph};
use gsd_io::{DiskModel, IoStatsSnapshot};
use gsd_pipeline::{PrefetchExecutor, PrefetchRequest, Prefetched};
use gsd_recover::{graph_fingerprint, CheckpointData, CheckpointStore, ManifestTag};
use gsd_runtime::kernels::{apply_range_timed, scatter_edges_timed, timed};
use gsd_runtime::{
    Capabilities, Engine, Frontier, IoAccessModel, IterationStats, ProgramContext, RunOptions,
    RunResult, RunStats, Value, ValueArray, VertexProgram, VertexValueFile,
};
use gsd_trace::{TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// The GraphSD out-of-core engine over a preprocessed [`GridGraph`].
pub struct GraphSdEngine {
    grid: GridGraph,
    config: GraphSdConfig,
    disk: DiskModel,
    degrees: Arc<Vec<u32>>,
    trace: Arc<dyn TraceSink>,
    last_decisions: Vec<SchedulerDecision>,
}

impl GraphSdEngine {
    /// Opens the engine. If the grid lacks per-vertex indexes (e.g. a
    /// Lumos-layout grid), selective loading is disabled automatically —
    /// unless the config *forces* the on-demand model, which is an error.
    pub fn new(grid: GridGraph, config: GraphSdConfig) -> std::io::Result<Self> {
        let mut config = config;
        if !grid.meta().indexed || !grid.meta().sorted {
            if config.force_model == Some(IoAccessModel::OnDemand) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "on-demand I/O requires a sorted, indexed grid format",
                ));
            }
            config.enable_selective = false;
        }
        let degrees = Arc::new(grid.load_out_degrees()?);
        let disk = config
            .disk_model
            .or_else(|| grid.storage().disk_model())
            .unwrap_or_default();
        Ok(GraphSdEngine {
            grid,
            config,
            disk,
            degrees,
            trace: gsd_trace::null_sink(),
            last_decisions: Vec::new(),
        })
    }

    /// Routes the engine's (and its scheduler's and buffer's) trace
    /// events to `trace`. The default is a disabled [`gsd_trace::NullSink`].
    pub fn set_trace(&mut self, trace: Arc<dyn TraceSink>) {
        self.trace = trace;
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridGraph {
        &self.grid
    }

    /// The effective configuration (after format-capability adjustment).
    pub fn config(&self) -> &GraphSdConfig {
        &self.config
    }

    /// Scheduler decisions of the most recent run (Figure 10/11 detail).
    pub fn last_decisions(&self) -> &[SchedulerDecision] {
        &self.last_decisions
    }
}

impl Engine for GraphSdEngine {
    fn name(&self) -> &'static str {
        "graphsd"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            eliminates_random_accesses: true,
            avoids_inactive_data: self.config.enable_selective,
            future_value_computation: self.config.enable_cross_iter,
        }
    }

    fn run<P: VertexProgram>(
        &mut self,
        program: &P,
        options: &RunOptions,
    ) -> std::io::Result<RunResult<P::Value>> {
        let runner = Runner::new(self, program, options)?;
        let (result, decisions) = runner.run()?;
        self.last_decisions = decisions;
        Ok(result)
    }
}

/// Per-iteration time/traffic tracker. The `scatter`/`apply` timers are
/// accumulated by the `*_timed` kernel wrappers *inside* the spans that
/// feed `compute`, so they always sum to at most `compute`.
struct IterTracker {
    io_snap: IoStatsSnapshot,
    io_wall: Duration,
    compute: Duration,
    scatter: Duration,
    apply: Duration,
    /// Wall time the consumer spent blocked on the prefetch pipeline
    /// (stalled behind an in-flight read, or reading a fallback itself).
    stall: Duration,
    prefetch_hits: u64,
    prefetch_misses: u64,
}

/// One resident sub-block recorded in a checkpoint. Only identity, size
/// and priority are persisted; payloads are re-read from the grid on
/// restore (the grid is immutable, so the decode is bit-identical).
#[derive(Serialize, Deserialize)]
struct ResidentBlock {
    i: u32,
    j: u32,
    bytes: u64,
    priority: u64,
}

/// Engine-private checkpoint payload, carried opaquely in the snapshot's
/// `extra` section: the scheduler's decision log (Figure 10/11 detail)
/// and the sub-block buffer's residency, so a resumed run reports the
/// same decisions and performs the same buffered I/O as an uninterrupted
/// one.
#[derive(Serialize, Deserialize)]
struct CkptExtra {
    decisions: Vec<SchedulerDecision>,
    overhead_nanos: u64,
    buffer_evictions: u64,
    residents: Vec<ResidentBlock>,
}

/// Per-run checkpoint state: the store plus cadence bookkeeping.
struct CkptDriver {
    store: CheckpointStore,
    every: u32,
    halt_after: Option<u32>,
    /// Iteration of the newest committed checkpoint (0 = none yet).
    last: u32,
}

struct Runner<'a, P: VertexProgram> {
    grid: &'a GridGraph,
    config: &'a GraphSdConfig,
    program: &'a P,
    ctx: ProgramContext,
    degrees: Arc<Vec<u32>>,
    n: u32,
    p: u32,
    limit: u32,
    values_prev: ValueArray<P::Value>,
    values_cur: ValueArray<P::Value>,
    accum_cur: ValueArray<P::Accum>,
    accum_next: ValueArray<P::Accum>,
    touched_cur: Frontier,
    touched_next: Frontier,
    frontier: Frontier,
    vfile: VertexValueFile,
    scheduler: Scheduler,
    buffer: SubBlockBuffer,
    pipeline: Option<PrefetchExecutor>,
    stats: RunStats,
    cross_iter_edges: u64,
    trace: Arc<dyn TraceSink>,
    per_edge_bytes: u64,
    value_file_bytes: u64,
    scratch: Vec<u8>,
    /// Max id gap bridged within one index-span request
    /// (`seek · B_sr / 4` — bridging cheaper than seeking beyond this).
    index_gap: u32,
}

impl<'a, P: VertexProgram> Runner<'a, P> {
    fn new(
        engine: &'a GraphSdEngine,
        program: &'a P,
        options: &RunOptions,
    ) -> std::io::Result<Self> {
        let grid = &engine.grid;
        let n = grid.num_vertices();
        let p = grid.p();
        let ctx = ProgramContext::new(n, engine.degrees.clone());
        let zero = program.zero_accum();
        let frontier = program.initial_frontier(&ctx).build(n)?;
        let value_bytes = program.value_bytes();
        let vfile = VertexValueFile::ensure(
            grid.storage().as_ref(),
            format!("{}runtime/values_{}.bin", grid.prefix(), value_bytes),
            n as u64 * value_bytes,
        )?;
        let edge_bytes = grid.meta().total_edge_bytes();
        let per_edge = grid.codec().edge_bytes() as u64;
        // Break-even run size: a run whose per-sub-block transfer time
        // equals one seek. A run of R bytes splits across up to P
        // sub-blocks (the grid fragments each vertex's edge list), so the
        // conservative default is P x seek x B_sr; callers with locality
        // knowledge (see the bench runner's calibration) can override.
        let seq_run_threshold = engine.config.seq_run_threshold.unwrap_or_else(|| {
            (p as f64 * engine.disk.seek_latency.as_secs_f64() * engine.disk.seq_read_bps).max(1.0)
                as u64
        });
        let mut scheduler = Scheduler::new(
            engine.disk,
            n as u64 * value_bytes,
            edge_bytes,
            per_edge,
            seq_run_threshold,
        );
        scheduler.set_trace(engine.trace.clone());
        // The working sub-block of the FCIU pass must fit alongside the
        // buffer, so the buffer gets the budget minus the largest block.
        let budget = engine.config.budget_for(edge_bytes);
        let largest_block = (0..p)
            .flat_map(|i| (0..p).map(move |j| (i, j)))
            .map(|(i, j)| grid.meta().block_bytes(i, j))
            .max()
            .unwrap_or(0);
        let mut buffer = SubBlockBuffer::new(budget.saturating_sub(largest_block));
        buffer.set_trace(engine.trace.clone());
        let pipeline = match engine.config.prefetch {
            Some(sizing) => {
                let mut exec = PrefetchExecutor::new(grid.clone(), sizing)?;
                exec.set_trace(engine.trace.clone());
                Some(exec)
            }
            None => None,
        };
        let index_gap = gsd_graph::narrow::saturating_u32((seq_run_threshold / 4).max(1));
        Ok(Runner {
            grid,
            config: &engine.config,
            program,
            degrees: engine.degrees.clone(),
            n,
            p,
            limit: options.limit_for(program),
            values_prev: ValueArray::from_fn(n as usize, |v| program.init_value(v, &ctx)),
            values_cur: ValueArray::from_fn(n as usize, |v| program.init_value(v, &ctx)),
            accum_cur: ValueArray::new(n as usize, zero),
            accum_next: ValueArray::new(n as usize, zero),
            touched_cur: Frontier::empty(n),
            touched_next: Frontier::empty(n),
            frontier,
            vfile,
            scheduler,
            buffer,
            pipeline,
            stats: RunStats::new("graphsd", program.name()),
            cross_iter_edges: 0,
            trace: engine.trace.clone(),
            per_edge_bytes: per_edge,
            value_file_bytes: n as u64 * value_bytes,
            scratch: Vec::new(),
            index_gap,
            ctx,
        })
    }

    fn run(mut self) -> std::io::Result<(RunResult<P::Value>, Vec<SchedulerDecision>)> {
        if self.n == 0 {
            return Ok((
                RunResult {
                    values: Vec::new(),
                    stats: self.stats,
                },
                Vec::new(),
            ));
        }
        let storage = self.grid.storage().clone();
        self.grid.set_verify_sink(self.trace.clone());
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::RunStart {
                engine: "graphsd",
                algorithm: self.program.name().to_string(),
            });
        }

        // Recovery setup happens BEFORE `run_snap`: checkpoint discovery,
        // snapshot reads and resident-block re-reads are resume machinery,
        // not part of the run, so they must not appear in `stats.io` (the
        // determinism contract promises a resumed run the same accounting
        // as an uninterrupted one).
        let mut iter = 1u32;
        let mut base_io = IoStatsSnapshot::default();
        let mut ckpt: Option<CkptDriver> = None;
        if let Some(cfg) = &self.config.checkpoint {
            let tag = ManifestTag {
                engine: "graphsd".to_string(),
                algorithm: self.program.name().to_string(),
                value_bytes: self.program.value_bytes(),
                num_vertices: self.n,
                graph_fingerprint: graph_fingerprint(storage.as_ref(), self.grid.prefix())?,
                config_hash: self.config.semantic_hash(),
            };
            let mut store = CheckpointStore::new(
                storage.clone(),
                format!("{}{}", self.grid.prefix(), cfg.dir),
                cfg.retain,
                tag,
            );
            store.set_trace(self.trace.clone());
            let mut last = 0u32;
            if cfg.resume {
                if let Some(data) = store.latest()? {
                    store.check_dimensions(&data, self.n)?;
                    self.restore(&data)?;
                    base_io = data.stats.io;
                    last = data.iteration;
                    iter = data.iteration + 1;
                }
            }
            ckpt = Some(CkptDriver {
                store,
                every: cfg.every,
                halt_after: cfg.halt_after,
                last,
            });
        }
        let run_snap = storage.stats().snapshot();
        // Taken after restore: resume-machinery verification (resident
        // block re-reads) is not part of this run's totals.
        let verify_snap = self.grid.verify_counters();

        // An iteration is due while either scatter sources remain
        // (`frontier`) or cross-iteration propagation has pre-scattered
        // contributions awaiting their apply barrier (`touched_cur` — the
        // recipients of the paper's `OutNI`). An iteration whose frontier
        // is empty but whose accumulator is pre-seeded loads no edges at
        // all: it is the fully-served case where SCIU saved the entire
        // iteration's edge I/O.
        while iter <= self.limit && !(self.frontier.is_empty() && self.touched_cur.is_empty()) {
            let model = self.choose_model(iter);
            if model == IoAccessModel::OnDemand && self.config.enable_selective {
                self.sciu(iter)?;
                iter += 1;
            } else {
                let two_pass = self.config.enable_cross_iter && iter < self.limit;
                iter += self.fciu(iter, two_pass)?;
            }
            // Checkpoint only at driver-loop boundaries: here the rotated
            // state (values_prev, accum_cur, touched_cur, frontier) is a
            // legal re-entry point. Mid-FCIU-pair state is NOT — resuming
            // there would double-count the pre-scattered accumulator.
            if let Some(driver) = ckpt.as_mut() {
                let committed = iter - 1;
                if committed.saturating_sub(driver.last) >= driver.every {
                    self.write_checkpoint(driver, committed, base_io, &run_snap, &verify_snap)?;
                    driver.last = committed;
                    if driver.halt_after.is_some_and(|halt| committed >= halt) {
                        // Simulated crash for recovery tests: abort at the
                        // exact commit point, where storage state equals an
                        // uninterrupted run's at this boundary (modulo
                        // checkpoint keys).
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::Interrupted,
                            format!("simulated crash after checkpoint at iteration {committed}"),
                        ));
                    }
                }
            }
        }

        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::RunEnd {
                engine: "graphsd",
                iterations: self.stats.iterations,
            });
        }
        let mut delta = storage.stats().snapshot().since(&run_snap);
        if let Some(driver) = &ckpt {
            // Checkpoint commits are protection overhead, not run I/O.
            delta = delta.since(&driver.store.io());
        }
        self.stats.io = base_io.plus(&delta);
        let vd = self.grid.verify_counters().since(&verify_snap);
        self.stats.fold_verify(&vd);
        self.stats.scheduler_time = self.scheduler.overhead;
        self.stats.cross_iter_edges = self.cross_iter_edges;
        self.stats.buffer_hits = self.buffer.hits;
        self.stats.buffer_hit_bytes = self.buffer.hit_bytes;
        let values = self.values_prev.snapshot();
        Ok((
            RunResult {
                values,
                stats: self.stats,
            },
            self.scheduler.decisions,
        ))
    }

    /// Rebuilds the runner's complete state from a checkpoint taken at a
    /// driver-loop boundary, as if the preceding iterations had just run:
    /// committed values, the pre-seeded next-iteration accumulator and its
    /// recipients, the frontier, cumulative statistics, the scheduler's
    /// decision log, and the sub-block buffer (payloads re-read from the
    /// grid). Called before `run_snap` is taken, so none of the reads here
    /// count toward the run's I/O.
    fn restore(&mut self, data: &CheckpointData) -> std::io::Result<()> {
        for (v, &bits) in (0u32..).zip(&data.values) {
            self.values_prev.set(v, P::Value::from_bits(bits));
        }
        self.values_cur.copy_from(&self.values_prev);
        for (v, &bits) in (0u32..).zip(&data.accum) {
            self.accum_cur.set(v, P::Accum::from_bits(bits));
        }
        self.accum_next.fill(self.program.zero_accum());
        self.frontier = Frontier::from_seeds(self.n, &data.frontier);
        self.touched_cur = Frontier::from_seeds(self.n, &data.touched);
        self.touched_next.clear();
        self.stats = data.stats.clone();
        self.cross_iter_edges = data.stats.cross_iter_edges;
        let extra: CkptExtra = serde_json::from_slice(&data.extra).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt engine checkpoint payload: {e}"),
            )
        })?;
        self.scheduler.decisions = extra.decisions;
        self.scheduler.overhead = Duration::from_nanos(extra.overhead_nanos);
        self.buffer.hits = data.stats.buffer_hits;
        self.buffer.hit_bytes = data.stats.buffer_hit_bytes;
        self.buffer.evictions = extra.buffer_evictions;
        for r in &extra.residents {
            let mut edges = Vec::new();
            self.grid
                .read_block_into(r.i, r.j, &mut self.scratch, &mut edges)?;
            self.buffer
                .offer(r.i, r.j, Arc::new(edges), r.bytes, r.priority);
        }
        Ok(())
    }

    /// Commits a checkpoint of the current boundary state through
    /// `driver.store`. The stored `stats.io` is what an uninterrupted run
    /// would report at this boundary: the restored base plus this run's
    /// delta, minus the store's own commit traffic.
    fn write_checkpoint(
        &mut self,
        driver: &mut CkptDriver,
        committed: u32,
        base_io: IoStatsSnapshot,
        run_snap: &IoStatsSnapshot,
        verify_snap: &gsd_graph::VerifyCounters,
    ) -> std::io::Result<()> {
        let mut stats = self.stats.clone();
        // Fold in the aggregates normally computed at run end, so the
        // restored stats are self-consistent at this boundary.
        stats.scheduler_time = self.scheduler.overhead;
        stats.cross_iter_edges = self.cross_iter_edges;
        stats.buffer_hits = self.buffer.hits;
        stats.buffer_hit_bytes = self.buffer.hit_bytes;
        let vd = self.grid.verify_counters().since(verify_snap);
        stats.fold_verify(&vd);
        let delta = self.grid.storage().stats().snapshot().since(run_snap);
        stats.io = base_io.plus(&delta.since(&driver.store.io()));
        let extra = CkptExtra {
            decisions: self.scheduler.decisions.clone(),
            overhead_nanos: self.scheduler.overhead.as_nanos() as u64,
            buffer_evictions: self.buffer.evictions,
            residents: self
                .buffer
                .residents()
                .into_iter()
                .map(|(i, j, bytes, priority)| ResidentBlock {
                    i,
                    j,
                    bytes,
                    priority,
                })
                .collect(),
        };
        let data = CheckpointData {
            iteration: committed,
            values: self
                .values_prev
                .snapshot()
                .into_iter()
                .map(Value::to_bits)
                .collect(),
            accum: self
                .accum_cur
                .snapshot()
                .into_iter()
                .map(Value::to_bits)
                .collect(),
            frontier: self.frontier.to_vec(),
            touched: self.touched_cur.to_vec(),
            stats,
            extra: serde_json::to_vec(&extra).map_err(std::io::Error::other)?,
        };
        driver.store.write(&data)
    }

    fn choose_model(&mut self, iteration: u32) -> IoAccessModel {
        if let Some(forced) = self.config.force_model {
            return forced;
        }
        if !self.config.enable_selective {
            return IoAccessModel::Full;
        }
        self.scheduler
            .select(iteration, &self.frontier, &self.degrees)
    }

    fn begin_iter(&self, iteration: u32) -> IterTracker {
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::IterationStart { iteration });
        }
        IterTracker {
            io_snap: self.grid.storage().stats().snapshot(),
            io_wall: Duration::ZERO,
            compute: Duration::ZERO,
            scatter: Duration::ZERO,
            apply: Duration::ZERO,
            stall: Duration::ZERO,
            prefetch_hits: 0,
            prefetch_misses: 0,
        }
    }

    fn finish_iter(
        &mut self,
        tracker: IterTracker,
        iteration: u32,
        model: IoAccessModel,
        frontier: u64,
        cross_iteration: bool,
    ) {
        let io = self
            .grid
            .storage()
            .stats()
            .snapshot()
            .since(&tracker.io_snap);
        let io_time = if io.sim_nanos > 0 {
            Duration::from_nanos(io.sim_nanos)
        } else {
            tracker.io_wall
        };
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::IterationEnd {
                iteration,
                model: crate::trace_model(model),
                frontier,
                bytes_read: io.read_bytes(),
                scatter_us: tracker.scatter.as_micros() as u64,
                apply_us: tracker.apply.as_micros() as u64,
                io_wait_us: tracker.io_wall.as_micros() as u64,
            });
        }
        self.stats.prefetch_hits += tracker.prefetch_hits;
        self.stats.prefetch_misses += tracker.prefetch_misses;
        self.stats.push_iteration(IterationStats {
            iteration,
            model,
            frontier,
            io,
            io_time,
            compute_time: tracker.compute,
            scatter_time: tracker.scatter,
            apply_time: tracker.apply,
            io_wait_time: tracker.io_wall,
            prefetch_stall_time: tracker.stall,
            cross_iteration,
        });
    }

    /// End-of-iteration rotation: committed values advance, the
    /// next-iteration accumulator becomes current, and `out` becomes the
    /// frontier.
    fn rotate(&mut self, out: Frontier) {
        std::mem::swap(&mut self.values_prev, &mut self.values_cur);
        std::mem::swap(&mut self.accum_cur, &mut self.accum_next);
        self.accum_next.fill(self.program.zero_accum());
        std::mem::swap(&mut self.touched_cur, &mut self.touched_next);
        self.touched_next.clear();
        self.frontier = out;
    }

    /// Consumes the next scheduled request from the prefetch pipeline,
    /// folding its wait into the iteration's I/O wall time and its
    /// hit/stall outcome into the tracker. Only called while a schedule
    /// is active (the plan queue is non-empty).
    fn take_prefetched(&mut self, tracker: &mut IterTracker) -> std::io::Result<Prefetched> {
        let Some(exec) = self.pipeline.as_mut() else {
            // Unreachable by construction (plans are only built when the
            // pipeline exists); surfaced as an error, not a panic.
            return Err(std::io::Error::other(
                "prefetch consume without an executor",
            ));
        };
        let taken = timed(&mut tracker.io_wall, || exec.take())?;
        if taken.outcome.is_hit() {
            tracker.prefetch_hits += 1;
        } else {
            tracker.prefetch_misses += 1;
        }
        tracker.stall += taken.outcome.stall();
        Ok(taken)
    }

    fn load_block(
        &mut self,
        i: u32,
        j: u32,
        io_wall: &mut Duration,
    ) -> std::io::Result<Arc<Vec<Edge>>> {
        let mut edges = Vec::new();
        timed(io_wall, || {
            self.grid
                .read_block_into(i, j, &mut self.scratch, &mut edges)
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::BlockLoad {
                i,
                j,
                bytes: self.grid.meta().block_bytes(i, j),
                seq: true,
            });
        }
        Ok(Arc::new(edges))
    }

    /// Selective cross-iteration update — Algorithm 2. One BSP iteration
    /// under the on-demand I/O model: load only active vertices' edge
    /// lists (coalescing contiguous runs into single requests), update
    /// their destinations, then pre-scatter next-iteration messages for
    /// re-activated vertices whose edges are already in memory.
    fn sciu(&mut self, iter: u32) -> std::io::Result<()> {
        let storage = self.grid.storage().clone();
        let frontier_size = self.frontier.count();
        let mut tracker = self.begin_iter(iter);

        // Stream the vertex value array in.
        timed(&mut tracker.io_wall, || {
            self.vfile.read_all(storage.as_ref())
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::ValueFlush {
                bytes: self.value_file_bytes,
                write: false,
            });
        }

        timed(&mut tracker.compute, || {
            self.values_cur.copy_from(&self.values_prev)
        });

        // On-demand load of active edge lists (kept in memory for the
        // cross-iteration phase — the defining trick of SCIU). The index
        // spans are resolved synchronously first — a run cannot be known
        // before its index arrives — producing the full coalesced run
        // list in the order the synchronous path reads it; the runs then
        // stream either through the prefetch pipeline or directly.
        let mut runs: Vec<PrefetchRequest> = Vec::new();
        for i in 0..self.p {
            let range = self.grid.intervals().range(i);
            let active: Vec<u32> = self.frontier.iter_range(range).collect();
            if active.is_empty() {
                continue;
            }
            let clusters = gsd_graph::cluster_vertex_spans(&active, self.index_gap);
            for span in &clusters {
                let cluster = &active[span.clone()];
                let (Some(&first), Some(&last)) = (cluster.first(), cluster.last()) else {
                    continue; // clusters over a non-empty active set are non-empty
                };
                // ONE index request per active cluster resolves the
                // cluster's edge ranges in every sub-block of the row.
                let index = timed(&mut tracker.io_wall, || {
                    self.grid.read_row_index_span(i, first, last)
                })?;

                for j in 0..self.p {
                    if self.grid.meta().block_edge_count(i, j) == 0 {
                        continue;
                    }
                    // Coalesce adjacent edge ranges of active vertices into
                    // single requests (the S_seq/S_ran structure the
                    // scheduler priced).
                    let mut run_start = 0u32;
                    let mut run_len = 0u32;
                    for &v in cluster {
                        let r = index.edge_range(v, j);
                        let len = r.end - r.start;
                        if len == 0 {
                            continue;
                        }
                        if run_len > 0 && r.start == run_start + run_len {
                            run_len += len;
                        } else {
                            if run_len > 0 {
                                runs.push(PrefetchRequest::Run {
                                    i,
                                    j,
                                    edge_start: run_start,
                                    edge_count: run_len,
                                });
                            }
                            run_start = r.start;
                            run_len = len;
                        }
                    }
                    if run_len > 0 {
                        runs.push(PrefetchRequest::Run {
                            i,
                            j,
                            edge_start: run_start,
                            edge_count: run_len,
                        });
                    }
                }
            }
        }
        let mut loaded: Vec<Edge> = Vec::new();
        if self.pipeline.is_some() {
            if let Some(exec) = self.pipeline.as_mut() {
                exec.begin_schedule(runs.clone());
            }
            for request in &runs {
                let taken = self.take_prefetched(&mut tracker)?;
                loaded.extend_from_slice(&taken.edges);
                if self.trace.enabled() {
                    let (i, j) = request.coords();
                    self.trace.emit(&TraceEvent::BlockLoad {
                        i,
                        j,
                        bytes: taken.bytes,
                        seq: false,
                    });
                }
            }
        } else {
            for request in &runs {
                let &PrefetchRequest::Run {
                    i,
                    j,
                    edge_start,
                    edge_count,
                } = request
                else {
                    continue; // SCIU schedules runs only
                };
                timed(&mut tracker.io_wall, || {
                    self.grid.read_edge_run(
                        i,
                        j,
                        edge_start,
                        edge_count,
                        &mut self.scratch,
                        &mut loaded,
                    )
                })?;
                if self.trace.enabled() {
                    self.trace.emit(&TraceEvent::BlockLoad {
                        i,
                        j,
                        bytes: edge_count as u64 * self.per_edge_bytes,
                        seq: false,
                    });
                }
            }
        }

        // UserFunction over the loaded active edges (sources are active by
        // construction, no filter needed).
        let out = timed(&mut tracker.compute, || {
            scatter_edges_timed(
                self.program,
                &self.ctx,
                &loaded,
                None,
                &self.values_prev,
                &self.accum_cur,
                &self.touched_cur,
                &mut tracker.scatter,
            );
            // Apply at the barrier.
            let out = Frontier::empty(self.n);
            apply_range_timed(
                self.program,
                &self.ctx,
                0..self.n,
                self.program.apply_all(),
                &self.touched_cur,
                &self.accum_cur,
                &self.values_cur,
                &out,
                &mut tracker.apply,
            );
            out
        });

        // Cross-iteration phase (Algorithm 2, lines 15–23): re-activated
        // vertices have all their out-edges in `loaded`; scatter their new
        // values into the next iteration's accumulator and drop them from
        // the next frontier.
        if self.config.enable_cross_iter && iter < self.limit {
            let served_edges = timed(&mut tracker.compute, || {
                let served_edges = scatter_edges_timed(
                    self.program,
                    &self.ctx,
                    &loaded,
                    Some(&out),
                    &self.values_cur,
                    &self.accum_next,
                    &self.touched_next,
                    &mut tracker.scatter,
                );
                // Remove every re-activated vertex (out ∩ V_active) — its
                // next-iteration scatter has been fully performed.
                let served: Vec<u32> = out.iter().filter(|&v| self.frontier.contains(v)).collect();
                for v in served {
                    out.remove(v);
                }
                served_edges
            });
            self.cross_iter_edges += served_edges;
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::SciuPass {
                    iteration: iter,
                    edges_served: served_edges,
                });
            }
        } else if self.trace.enabled() {
            self.trace.emit(&TraceEvent::SciuPass {
                iteration: iter,
                edges_served: 0,
            });
        }

        // Stream the vertex value array back out.
        timed(&mut tracker.io_wall, || {
            self.vfile.write_all(storage.as_ref())
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::ValueFlush {
                bytes: self.value_file_bytes,
                write: true,
            });
        }

        self.rotate(out);
        self.finish_iter(tracker, iter, IoAccessModel::OnDemand, frontier_size, false);
        Ok(())
    }

    /// Full cross-iteration update — Algorithm 3. With `two_pass`, one
    /// full destination-major sweep commits iteration `iter` while
    /// pre-scattering iteration `iter + 1` along every sub-block `(i, j)`
    /// with `i ≤ j`; the second pass then reads only the lower-triangle
    /// "secondary" sub-blocks. Without `two_pass` (cross-iteration
    /// disabled, or the last iteration), it is a plain full-streaming
    /// iteration. Returns the number of iterations consumed.
    fn fciu(&mut self, iter: u32, two_pass: bool) -> std::io::Result<u32> {
        let storage = self.grid.storage().clone();

        // ---------------- pass 1: iteration `iter` ----------------
        let frontier_size = self.frontier.count();
        let mut tracker = self.begin_iter(iter);

        timed(&mut tracker.io_wall, || {
            self.vfile.read_all(storage.as_ref())
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::ValueFlush {
                bytes: self.value_file_bytes,
                write: false,
            });
        }

        timed(&mut tracker.compute, || {
            self.values_cur.copy_from(&self.values_prev)
        });

        // Prefetch plan for the pass: every sub-block that will stream
        // from storage, in visit order. Buffer residents are skipped —
        // offers may still evict them mid-pass, so consumption matches
        // against the schedule front and an evicted resident (never
        // scheduled) falls back to a synchronous load.
        let mut plan: VecDeque<(u32, u32)> = VecDeque::new();
        if self.pipeline.is_some() {
            let mut schedule = Vec::new();
            for j in 0..self.p {
                for i in 0..self.p {
                    if self.grid.meta().block_edge_count(i, j) == 0 {
                        continue;
                    }
                    if i > j && self.config.enable_buffering && self.buffer.contains(i, j) {
                        continue;
                    }
                    schedule.push(PrefetchRequest::Block { i, j });
                    plan.push_back((i, j));
                }
            }
            if let Some(exec) = self.pipeline.as_mut() {
                exec.begin_schedule(schedule);
            }
        }

        let out = Frontier::empty(self.n);
        let mut pass_edges_served = 0u64;
        for j in 0..self.p {
            let mut diag_edges: Option<Arc<Vec<Edge>>> = None;
            for i in 0..self.p {
                if self.grid.meta().block_edge_count(i, j) == 0 {
                    continue;
                }
                // Scheduled blocks come from the pipeline; secondary
                // sub-blocks may be resident from a previous round's
                // buffering; everything else streams from storage.
                let edges = if plan.front() == Some(&(i, j)) {
                    plan.pop_front();
                    let taken = self.take_prefetched(&mut tracker)?;
                    if self.trace.enabled() {
                        self.trace.emit(&TraceEvent::BlockLoad {
                            i,
                            j,
                            bytes: taken.bytes,
                            seq: true,
                        });
                    }
                    Arc::new(taken.edges)
                } else {
                    match (i > j && self.config.enable_buffering)
                        .then(|| self.buffer.get(i, j))
                        .flatten()
                    {
                        Some(e) => e,
                        None => self.load_block(i, j, &mut tracker.io_wall)?,
                    }
                };

                timed(&mut tracker.compute, || {
                    let delivered = scatter_edges_timed(
                        self.program,
                        &self.ctx,
                        &edges,
                        Some(&self.frontier),
                        &self.values_prev,
                        &self.accum_cur,
                        &self.touched_cur,
                        &mut tracker.scatter,
                    );
                    if two_pass {
                        if i < j {
                            // Interval i is fully applied (its column came
                            // earlier), so cross-iteration propagation is
                            // legal.
                            let served = scatter_edges_timed(
                                self.program,
                                &self.ctx,
                                &edges,
                                Some(&out),
                                &self.values_cur,
                                &self.accum_next,
                                &self.touched_next,
                                &mut tracker.scatter,
                            );
                            self.cross_iter_edges += served;
                            pass_edges_served += served;
                        } else if i == j {
                            // Held in memory until interval j is applied.
                            diag_edges = Some(edges.clone());
                        } else if self.config.enable_buffering {
                            // Secondary sub-block: candidate for the buffer,
                            // priority = active edges seen this pass.
                            let bytes = self.grid.meta().block_bytes(i, j);
                            self.buffer.offer(i, j, edges.clone(), bytes, delivered);
                        }
                    }
                });
            }
            // Apply interval j at its barrier.
            timed(&mut tracker.compute, || {
                apply_range_timed(
                    self.program,
                    &self.ctx,
                    self.grid.intervals().range(j),
                    self.program.apply_all(),
                    &self.touched_cur,
                    &self.accum_cur,
                    &self.values_cur,
                    &out,
                    &mut tracker.apply,
                );
                // Diagonal cross-iteration after interval j's values are
                // final.
                if let Some(diag) = diag_edges {
                    let served = scatter_edges_timed(
                        self.program,
                        &self.ctx,
                        &diag,
                        Some(&out),
                        &self.values_cur,
                        &self.accum_next,
                        &self.touched_next,
                        &mut tracker.scatter,
                    );
                    self.cross_iter_edges += served;
                    pass_edges_served += served;
                }
            });
        }
        if two_pass && self.trace.enabled() {
            self.trace.emit(&TraceEvent::FciuPass {
                iteration: iter,
                edges_served: pass_edges_served,
            });
        }

        timed(&mut tracker.io_wall, || {
            self.vfile.write_all(storage.as_ref())
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::ValueFlush {
                bytes: self.value_file_bytes,
                write: true,
            });
        }

        self.rotate(out);
        self.finish_iter(tracker, iter, IoAccessModel::Full, frontier_size, false);

        if !two_pass || self.frontier.is_empty() {
            // Converged at `iter` (or single-pass mode): any pre-scattered
            // next-iteration state is vacuous because it can only originate
            // from `out` members.
            return Ok(1);
        }

        // ------------- pass 2: iteration `iter + 1` -------------
        // Only the secondary sub-blocks (i > j) are read; contributions
        // along i ≤ j edges were pre-scattered and live in `accum_cur`
        // after the rotation.
        let frontier_size2 = self.frontier.count();
        let mut tracker = self.begin_iter(iter + 1);

        timed(&mut tracker.io_wall, || {
            self.vfile.read_all(storage.as_ref())
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::ValueFlush {
                bytes: self.value_file_bytes,
                write: false,
            });
        }

        timed(&mut tracker.compute, || {
            self.values_cur.copy_from(&self.values_prev)
        });

        // The second pass streams only the secondary sub-blocks that are
        // not buffer-resident; no offers happen here, so residency is
        // stable, but the fallback is kept for uniformity.
        let mut plan: VecDeque<(u32, u32)> = VecDeque::new();
        if self.pipeline.is_some() {
            let mut schedule = Vec::new();
            for j in 0..self.p {
                for i in (j + 1)..self.p {
                    if self.grid.meta().block_edge_count(i, j) == 0 {
                        continue;
                    }
                    if self.config.enable_buffering && self.buffer.contains(i, j) {
                        continue;
                    }
                    schedule.push(PrefetchRequest::Block { i, j });
                    plan.push_back((i, j));
                }
            }
            if let Some(exec) = self.pipeline.as_mut() {
                exec.begin_schedule(schedule);
            }
        }

        let out = Frontier::empty(self.n);
        for j in 0..self.p {
            for i in (j + 1)..self.p {
                if self.grid.meta().block_edge_count(i, j) == 0 {
                    continue;
                }
                let edges = if plan.front() == Some(&(i, j)) {
                    plan.pop_front();
                    let taken = self.take_prefetched(&mut tracker)?;
                    if self.trace.enabled() {
                        self.trace.emit(&TraceEvent::BlockLoad {
                            i,
                            j,
                            bytes: taken.bytes,
                            seq: true,
                        });
                    }
                    Arc::new(taken.edges)
                } else {
                    match self
                        .config
                        .enable_buffering
                        .then(|| self.buffer.get(i, j))
                        .flatten()
                    {
                        Some(e) => e,
                        None => self.load_block(i, j, &mut tracker.io_wall)?,
                    }
                };
                timed(&mut tracker.compute, || {
                    scatter_edges_timed(
                        self.program,
                        &self.ctx,
                        &edges,
                        Some(&self.frontier),
                        &self.values_prev,
                        &self.accum_cur,
                        &self.touched_cur,
                        &mut tracker.scatter,
                    )
                });
            }
            timed(&mut tracker.compute, || {
                apply_range_timed(
                    self.program,
                    &self.ctx,
                    self.grid.intervals().range(j),
                    self.program.apply_all(),
                    &self.touched_cur,
                    &self.accum_cur,
                    &self.values_cur,
                    &out,
                    &mut tracker.apply,
                )
            });
        }

        timed(&mut tracker.io_wall, || {
            self.vfile.write_all(storage.as_ref())
        })?;
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::ValueFlush {
                bytes: self.value_file_bytes,
                write: true,
            });
        }

        self.rotate(out);
        self.finish_iter(tracker, iter + 1, IoAccessModel::Full, frontier_size2, true);
        Ok(2)
    }
}
