//! Invariants of the engine's accounting: per-iteration records must be
//! consistent with run totals, run options must be honored, and the
//! signature behaviours of SCIU/FCIU must be visible in the stats.

use gsd_algos::{Bfs, ConnectedComponents, PageRank};
use gsd_core::{GraphSdConfig, GraphSdEngine};
use gsd_graph::{preprocess, GeneratorConfig, Graph, GraphKind, GridGraph, PreprocessConfig};
use gsd_io::{DiskModel, SharedStorage, SimDisk};
use gsd_runtime::{Engine, IoAccessModel, RunOptions};
use std::sync::Arc;

fn engine(graph: &Graph, p: u32, config: GraphSdConfig) -> GraphSdEngine {
    let storage: SharedStorage = Arc::new(SimDisk::new(DiskModel::hdd()));
    preprocess(
        graph,
        storage.as_ref(),
        &PreprocessConfig::graphsd("").with_intervals(p),
    )
    .unwrap();
    GraphSdEngine::new(GridGraph::open(storage).unwrap(), config).unwrap()
}

fn web_graph() -> Graph {
    GeneratorConfig::new(GraphKind::WebLocality, 2000, 20_000, 5).generate()
}

#[test]
fn per_iteration_records_cover_the_run() {
    let g = web_graph();
    let mut e = engine(&g, 4, GraphSdConfig::full());
    let result = e.run(&Bfs::new(0), &RunOptions::default()).unwrap();
    let s = &result.stats;
    // One record per committed iteration, numbered 1..=iterations.
    assert_eq!(s.per_iteration.len() as u32, s.iterations);
    for (k, it) in s.per_iteration.iter().enumerate() {
        assert_eq!(it.iteration, k as u32 + 1);
    }
    // Totals are the sums of the iteration records.
    let io_sum: std::time::Duration = s.per_iteration.iter().map(|i| i.io_time).sum();
    let cpu_sum: std::time::Duration = s.per_iteration.iter().map(|i| i.compute_time).sum();
    assert_eq!(io_sum, s.io_time);
    assert_eq!(cpu_sum, s.compute_time);
    // Iteration traffic never exceeds run traffic.
    let traffic_sum: u64 = s.per_iteration.iter().map(|i| i.io.total_traffic()).sum();
    assert!(traffic_sum <= s.io.total_traffic());
}

#[test]
fn max_iterations_override_wins() {
    let g = web_graph();
    let mut e = engine(&g, 4, GraphSdConfig::full());
    let result = e
        .run(
            &PageRank::paper(), // program says 5
            &RunOptions {
                max_iterations: Some(2),
                iteration_cap: None,
            },
        )
        .unwrap();
    assert_eq!(result.stats.iterations, 2);
}

#[test]
fn fciu_second_pass_reads_less_than_first() {
    // With cross-iteration on and a dense frontier, even iterations (the
    // secondary pass) must read strictly less than odd ones.
    let g = GeneratorConfig::new(GraphKind::RMat, 1000, 12_000, 9).generate();
    let mut e = engine(&g, 4, GraphSdConfig::without_buffering());
    let result = e
        .run(&PageRank::with_iterations(4), &RunOptions::default())
        .unwrap();
    let per = &result.stats.per_iteration;
    assert!(per.len() >= 4);
    assert!(per[1].cross_iteration && per[3].cross_iteration);
    assert!(per[1].io.read_bytes() < per[0].io.read_bytes());
    assert!(per[3].io.read_bytes() < per[2].io.read_bytes());
}

#[test]
fn fully_served_sciu_iteration_reads_no_edge_blocks() {
    // A directed star 0 -> {1..n}: BFS from 0 under forced on-demand.
    // Iteration 1 loads vertex 0's edges; iteration 2 has an empty
    // frontier but pending cross-iteration applies — it must not read any
    // edge data at all (only the vertex value stream).
    let mut b = gsd_graph::GraphBuilder::new();
    for v in 1..500u32 {
        b.add_edge(0, v);
    }
    let g = b.build();
    let mut e = engine(&g, 3, GraphSdConfig::b4_always_on_demand());
    let result = e.run(&Bfs::new(0), &RunOptions::default()).unwrap();
    // Star BFS: depth 1 everywhere, engine commits iteration 1 (scatter)
    // and stops (everyone served, nothing new).
    assert!(result.values[1..].iter().all(|&d| d == 1));
    let vertex_stream = g.num_vertices() as u64 * 4 * 2 + 4096; // values in+out, slack
    for it in &result.stats.per_iteration {
        if it.frontier == 0 {
            assert!(
                it.io.read_bytes() <= vertex_stream,
                "fully-served iteration read {} bytes",
                it.io.read_bytes()
            );
        }
    }
}

#[test]
fn scheduler_time_only_accrues_when_consulted() {
    let g = web_graph();
    let mut adaptive = engine(&g, 4, GraphSdConfig::full());
    let a = adaptive.run(&Bfs::new(0), &RunOptions::default()).unwrap();
    assert!(a.stats.scheduler_time > std::time::Duration::ZERO);

    let mut forced = engine(&g, 4, GraphSdConfig::b3_always_full());
    let b = forced.run(&Bfs::new(0), &RunOptions::default()).unwrap();
    assert_eq!(b.stats.scheduler_time, std::time::Duration::ZERO);
    assert!(forced.last_decisions().is_empty());
}

#[test]
fn engine_is_reusable_across_runs() {
    let g = web_graph();
    let mut e = engine(&g, 4, GraphSdConfig::full());
    let first = e.run(&ConnectedComponents, &RunOptions::default()).unwrap();
    let second = e.run(&ConnectedComponents, &RunOptions::default()).unwrap();
    assert_eq!(first.values, second.values);
    assert_eq!(first.stats.iterations, second.stats.iterations);
    // Deterministic traffic too (the SimDisk makes runs replayable).
    assert_eq!(
        first.stats.io.total_traffic(),
        second.stats.io.total_traffic()
    );
}

#[test]
fn models_recorded_match_forced_configs() {
    let g = web_graph();
    for (config, expect) in [
        (GraphSdConfig::b3_always_full(), IoAccessModel::Full),
        (
            GraphSdConfig::b4_always_on_demand(),
            IoAccessModel::OnDemand,
        ),
    ] {
        let mut e = engine(&g, 4, config);
        let r = e.run(&Bfs::new(0), &RunOptions::default()).unwrap();
        assert!(
            r.stats.per_iteration.iter().all(|it| it.model == expect),
            "{expect:?}"
        );
    }
}
