//! The repo's central correctness property: for every program and every
//! GraphSD configuration (full system and all §5.4 ablations), the engine
//! commits the same values as the in-memory BSP reference executor.
//! Discrete (min-combine) programs must agree exactly; float-sum programs
//! agree within a tolerance that covers reduction-order differences.

use gsd_algos::{Bfs, ConnectedComponents, PageRank, PageRankDelta, Sssp};
use gsd_core::{GraphSdConfig, GraphSdEngine};
use gsd_graph::{preprocess, GeneratorConfig, Graph, GraphKind, GridGraph, PreprocessConfig};
use gsd_io::{DiskModel, SharedStorage, SimDisk};
use gsd_runtime::{Engine, ReferenceEngine, RunOptions, VertexProgram};
use std::sync::Arc;

fn grid_of(graph: &Graph, p: u32) -> GridGraph {
    let storage: SharedStorage = Arc::new(SimDisk::new(DiskModel::hdd()));
    preprocess(
        graph,
        storage.as_ref(),
        &PreprocessConfig::graphsd("").with_intervals(p),
    )
    .unwrap();
    GridGraph::open(storage).unwrap()
}

fn configs() -> Vec<(&'static str, GraphSdConfig)> {
    vec![
        ("full", GraphSdConfig::full()),
        ("b1", GraphSdConfig::b1_no_cross_iteration()),
        ("b2", GraphSdConfig::b2_no_selective()),
        ("b3", GraphSdConfig::b3_always_full()),
        ("b4", GraphSdConfig::b4_always_on_demand()),
        ("no-buffer", GraphSdConfig::without_buffering()),
    ]
}

fn check_exact<P: VertexProgram<Value = u32>>(graph: &Graph, p: u32, program: &P) {
    let want = ReferenceEngine::new(graph)
        .run(program, &RunOptions::default())
        .unwrap()
        .values;
    for (label, config) in configs() {
        let mut engine = GraphSdEngine::new(grid_of(graph, p), config).unwrap();
        let got = engine.run(program, &RunOptions::default()).unwrap().values;
        assert_eq!(got, want, "config {label}, P={p}");
    }
}

fn check_f32<P: VertexProgram<Value = f32>>(graph: &Graph, p: u32, program: &P, tol: f32) {
    let want = ReferenceEngine::new(graph)
        .run(program, &RunOptions::default())
        .unwrap()
        .values;
    for (label, config) in configs() {
        let mut engine = GraphSdEngine::new(grid_of(graph, p), config).unwrap();
        let got = engine.run(program, &RunOptions::default()).unwrap().values;
        for (v, (a, b)) in got.iter().zip(want.iter()).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "config {label}, vertex {v}: {a} vs inf");
            } else {
                assert!(
                    (a - b).abs() <= tol * b.abs().max(1.0),
                    "config {label}, vertex {v}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn cc_matches_reference_on_rmat() {
    let g = GeneratorConfig::new(GraphKind::RMat, 600, 4000, 42)
        .generate()
        .symmetrized();
    for p in [1, 3, 4] {
        check_exact(&g, p, &ConnectedComponents);
    }
}

#[test]
fn cc_matches_reference_on_web_graph() {
    let g = GeneratorConfig::new(GraphKind::WebLocality, 800, 5000, 7)
        .generate()
        .symmetrized();
    check_exact(&g, 5, &ConnectedComponents);
}

#[test]
fn bfs_matches_reference() {
    let g = GeneratorConfig::new(GraphKind::WebLocality, 700, 4000, 11).generate();
    for p in [2, 4] {
        check_exact(&g, p, &Bfs::new(0));
    }
}

#[test]
fn bfs_from_various_sources() {
    let g = GeneratorConfig::new(GraphKind::RMat, 500, 3000, 3).generate();
    for src in [0, 123, 499] {
        check_exact(&g, 3, &Bfs::new(src));
    }
}

#[test]
fn sssp_matches_reference() {
    let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 400, 3000, 9)
        .weighted()
        .generate();
    for p in [1, 4] {
        check_f32(&g, p, &Sssp::new(0), 1e-5);
    }
}

#[test]
fn pagerank_matches_reference() {
    let g = GeneratorConfig::new(GraphKind::RMat, 500, 4000, 13).generate();
    for p in [1, 4] {
        check_f32(&g, p, &PageRank::paper(), 1e-3);
    }
}

#[test]
fn pagerank_delta_matches_reference() {
    let g = GeneratorConfig::new(GraphKind::RMat, 400, 3000, 17).generate();
    let want = ReferenceEngine::new(&g)
        .run(&PageRankDelta::paper(), &RunOptions::default())
        .unwrap()
        .values;
    for (label, config) in configs() {
        let mut engine = GraphSdEngine::new(grid_of(&g, 4), config).unwrap();
        let got = engine
            .run(&PageRankDelta::paper(), &RunOptions::default())
            .unwrap()
            .values;
        for (v, ((ra, _), (rb, _))) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (ra - rb).abs() <= 2e-2 * rb.abs().max(1.0),
                "config {label}, vertex {v}: {ra} vs {rb}"
            );
        }
    }
}

#[test]
fn iteration_counts_match_reference() {
    let g = GeneratorConfig::new(GraphKind::WebLocality, 600, 3500, 23)
        .generate()
        .symmetrized();
    let want = ReferenceEngine::new(&g)
        .run(&ConnectedComponents, &RunOptions::default())
        .unwrap()
        .stats
        .iterations;
    for (label, config) in configs() {
        let mut engine = GraphSdEngine::new(grid_of(&g, 4), config).unwrap();
        let got = engine
            .run(&ConnectedComponents, &RunOptions::default())
            .unwrap()
            .stats
            .iterations;
        // FCIU commits iterations in pairs (one possibly-vacuous extra
        // iteration), and SCIU may finish one iteration *early* when the
        // final frontier consists of vertices with no out-edges (their
        // cross-iteration service leaves nothing to do). Values always
        // match; the count may differ by one in either direction.
        assert!(
            got + 1 == want || got == want || got == want + 1,
            "config {label}: {got} vs reference {want}"
        );
    }
}

#[test]
fn empty_graph_is_handled() {
    let g = Graph::from_edges(0, vec![], false);
    let mut engine = GraphSdEngine::new(grid_of(&g, 1), GraphSdConfig::full()).unwrap();
    let result = engine
        .run(&ConnectedComponents, &RunOptions::default())
        .unwrap();
    assert!(result.values.is_empty());
    assert_eq!(result.stats.iterations, 0);
}

#[test]
fn single_vertex_no_edges() {
    let g = Graph::from_edges(1, vec![], false);
    let mut engine = GraphSdEngine::new(grid_of(&g, 1), GraphSdConfig::full()).unwrap();
    let result = engine
        .run(&ConnectedComponents, &RunOptions::default())
        .unwrap();
    assert_eq!(result.values, vec![0]);
}

#[test]
fn cross_iteration_actually_fires() {
    let g = GeneratorConfig::new(GraphKind::RMat, 500, 4000, 29).generate();
    let mut engine = GraphSdEngine::new(grid_of(&g, 4), GraphSdConfig::full()).unwrap();
    let result = engine
        .run(&PageRank::paper(), &RunOptions::default())
        .unwrap();
    assert!(
        result.stats.cross_iter_edges > 0,
        "FCIU must serve edges across iterations on a dense PR run"
    );
    // Some committed iterations must be pure cross-iteration passes.
    assert!(result
        .stats
        .per_iteration
        .iter()
        .any(|it| it.cross_iteration));
}

#[test]
fn b1_never_reports_cross_iteration() {
    let g = GeneratorConfig::new(GraphKind::RMat, 400, 3000, 31).generate();
    let mut engine =
        GraphSdEngine::new(grid_of(&g, 3), GraphSdConfig::b1_no_cross_iteration()).unwrap();
    let result = engine
        .run(&PageRank::paper(), &RunOptions::default())
        .unwrap();
    assert_eq!(result.stats.cross_iter_edges, 0);
    assert!(result
        .stats
        .per_iteration
        .iter()
        .all(|it| !it.cross_iteration));
}

#[test]
fn selective_loading_reads_less_than_full_on_sparse_frontier() {
    // BFS on a web graph: tiny frontiers almost everywhere.
    let g = GeneratorConfig::new(GraphKind::WebLocality, 2000, 16000, 37).generate();
    let run = |config: GraphSdConfig| {
        let mut engine = GraphSdEngine::new(grid_of(&g, 4), config).unwrap();
        let r = engine.run(&Bfs::new(0), &RunOptions::default()).unwrap();
        r.stats.io.total_traffic()
    };
    let selective = run(GraphSdConfig::full());
    let full = run(GraphSdConfig::b2_no_selective());
    assert!(
        selective < full,
        "selective {selective} should beat always-full {full}"
    );
}

#[test]
fn cross_iteration_reduces_traffic_on_dense_runs() {
    let g = GeneratorConfig::new(GraphKind::RMat, 1500, 24000, 41).generate();
    let run = |config: GraphSdConfig| {
        let mut engine = GraphSdEngine::new(grid_of(&g, 4), config).unwrap();
        let r = engine
            .run(&PageRank::with_iterations(6), &RunOptions::default())
            .unwrap();
        r.stats.io.total_traffic()
    };
    // Disable buffering on both sides to isolate the FCIU effect.
    let mut with_ci = GraphSdConfig::without_buffering();
    with_ci.enable_cross_iter = true;
    let mut without_ci = GraphSdConfig::without_buffering();
    without_ci.enable_cross_iter = false;
    let a = run(with_ci);
    let b = run(without_ci);
    assert!(a < b, "cross-iteration {a} should beat plain streaming {b}");
}

#[test]
fn scheduler_decisions_are_recorded() {
    let g = GeneratorConfig::new(GraphKind::WebLocality, 1000, 8000, 43).generate();
    let mut engine = GraphSdEngine::new(grid_of(&g, 4), GraphSdConfig::full()).unwrap();
    let result = engine.run(&Bfs::new(0), &RunOptions::default()).unwrap();
    assert!(!engine.last_decisions().is_empty());
    assert!(result.stats.scheduler_time > std::time::Duration::ZERO);
    // Every SCIU iteration must correspond to an OnDemand decision.
    for it in &result.stats.per_iteration {
        if it.model == gsd_runtime::IoAccessModel::OnDemand {
            assert!(engine
                .last_decisions()
                .iter()
                .any(|d| d.iteration == it.iteration
                    && d.model == gsd_runtime::IoAccessModel::OnDemand));
        }
    }
}

#[test]
fn out_of_range_source_is_a_clean_error() {
    // Regression: an SSSP/BFS root beyond |V| must be InvalidInput, not a
    // panic inside the frontier bitset.
    let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 100, 400, 1).generate();
    let mut engine = GraphSdEngine::new(grid_of(&g, 2), GraphSdConfig::full()).unwrap();
    let err = engine
        .run(&Bfs::new(10_000), &RunOptions::default())
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn forced_on_demand_errors_on_unindexed_grid() {
    let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 100, 500, 1).generate();
    let storage: SharedStorage = Arc::new(SimDisk::new(DiskModel::hdd()));
    preprocess(
        &g,
        storage.as_ref(),
        &PreprocessConfig::lumos("").with_intervals(2),
    )
    .unwrap();
    let grid = GridGraph::open(storage).unwrap();
    assert!(GraphSdEngine::new(grid, GraphSdConfig::b4_always_on_demand()).is_err());
}

#[test]
fn unindexed_grid_falls_back_to_full_model() {
    let g = GeneratorConfig::new(GraphKind::ErdosRenyi, 200, 1500, 2).generate();
    let storage: SharedStorage = Arc::new(SimDisk::new(DiskModel::hdd()));
    preprocess(
        &g,
        storage.as_ref(),
        &PreprocessConfig::lumos("").with_intervals(2),
    )
    .unwrap();
    let grid = GridGraph::open(storage).unwrap();
    let mut engine = GraphSdEngine::new(grid, GraphSdConfig::full()).unwrap();
    let got = engine
        .run(&ConnectedComponents, &RunOptions::default())
        .unwrap()
        .values;
    let want = ReferenceEngine::new(&g)
        .run(&ConnectedComponents, &RunOptions::default())
        .unwrap()
        .values;
    assert_eq!(got, want);
}
