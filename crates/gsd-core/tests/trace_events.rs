//! Cross-layer trace invariants: the events an engine emits must agree
//! with the statistics it reports, and tracing must never perturb the
//! traced run.

use gsd_algos::{Bfs, PageRank};
use gsd_core::{GraphSdConfig, GraphSdEngine, SubBlockBuffer};
use gsd_graph::{preprocess, Edge, GeneratorConfig, Graph, GraphKind, GridGraph, PreprocessConfig};
use gsd_io::{DiskModel, SharedStorage, SimDisk};
use gsd_runtime::{Engine, RunOptions, RunResult};
use gsd_trace::{RingRecorder, TraceEvent};
use std::sync::Arc;

fn engine(graph: &Graph, p: u32, config: GraphSdConfig) -> GraphSdEngine {
    let storage: SharedStorage = Arc::new(SimDisk::new(DiskModel::hdd()));
    preprocess(
        graph,
        storage.as_ref(),
        &PreprocessConfig::graphsd("").with_intervals(p),
    )
    .unwrap();
    GraphSdEngine::new(GridGraph::open(storage).unwrap(), config).unwrap()
}

fn web_graph() -> Graph {
    GeneratorConfig::new(GraphKind::WebLocality, 2000, 20_000, 5).generate()
}

#[test]
fn one_scheduler_decision_event_per_invocation() {
    let g = web_graph();
    let mut e = engine(&g, 4, GraphSdConfig::full());
    let ring = Arc::new(RingRecorder::new(1 << 17));
    e.set_trace(ring.clone());
    e.run(&Bfs::new(0), &RunOptions::default()).unwrap();
    // The unforced engine consults the scheduler at least once, and every
    // consultation produces exactly one event and one recorded decision.
    assert!(!e.last_decisions().is_empty());
    assert_eq!(
        ring.count_kind("scheduler_decision"),
        e.last_decisions().len()
    );
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the run");
}

#[test]
fn phase_timers_sum_within_compute_time() {
    let g = web_graph();
    let mut e = engine(&g, 4, GraphSdConfig::full());
    let result = e.run(&PageRank::paper(), &RunOptions::default()).unwrap();
    assert!(!result.stats.per_iteration.is_empty());
    for it in &result.stats.per_iteration {
        // scatter/apply spans are nested inside the compute span, so their
        // sum can never exceed it.
        assert!(
            it.scatter_time + it.apply_time <= it.compute_time,
            "iteration {}: scatter {:?} + apply {:?} > compute {:?}",
            it.iteration,
            it.scatter_time,
            it.apply_time,
            it.compute_time
        );
    }
}

#[test]
fn buffer_hit_events_match_run_counters() {
    // Force the full model so FCIU runs and the sub-block buffer serves
    // the second pass's secondary blocks.
    let g = GeneratorConfig::new(GraphKind::RMat, 1000, 12_000, 9).generate();
    // A budget comfortably above one sub-block, so offers are accepted
    // (the default 5 % of this tiny graph is below block granularity).
    let config = GraphSdConfig::b3_always_full().with_memory_budget(1 << 20);
    let mut e = engine(&g, 4, config);
    let ring = Arc::new(RingRecorder::new(1 << 17));
    e.set_trace(ring.clone());
    let result = e
        .run(&PageRank::with_iterations(4), &RunOptions::default())
        .unwrap();
    assert!(
        result.stats.buffer_hits > 0,
        "FCIU run should hit the buffer"
    );
    assert_eq!(
        ring.count_kind("buffer_hit") as u64,
        result.stats.buffer_hits
    );
    assert_eq!(ring.dropped(), 0);
}

#[test]
fn buffer_eviction_events_match_counter() {
    let ring = Arc::new(RingRecorder::new(64));
    let mut b = SubBlockBuffer::new(300);
    b.set_trace(ring.clone());
    let block = |n: usize| Arc::new(vec![Edge::new(0, 1); n]);
    assert!(b.offer(1, 0, block(1), 100, 1));
    assert!(b.offer(2, 0, block(1), 100, 2));
    assert!(b.offer(3, 0, block(1), 100, 3));
    // 250 bytes fit only after all three residents are evicted.
    assert!(b.offer(4, 0, block(1), 250, 10));
    assert_eq!(b.evictions, 3);
    assert_eq!(ring.count_kind("buffer_eviction") as u64, b.evictions);
    b.get(4, 0).unwrap();
    assert_eq!(ring.count_kind("buffer_hit") as u64, b.hits);
    // Event payloads carry the victims' coordinates and sizes.
    let evicted: Vec<(u32, u32, u64)> = ring
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::BufferEviction { i, j, bytes } => Some((*i, *j, *bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(evicted, vec![(1, 0, 100), (2, 0, 100), (3, 0, 100)]);
}

/// The deterministic portion of a run's outcome (everything except
/// wall-clock durations, which vary between any two runs).
fn deterministic_fingerprint(r: &RunResult<f32>) -> impl PartialEq + std::fmt::Debug {
    (
        r.values.clone(),
        r.stats.iterations,
        r.stats.io,
        r.stats.buffer_hits,
        r.stats.buffer_hit_bytes,
        r.stats.cross_iter_edges,
        r.stats
            .per_iteration
            .iter()
            .map(|it| (it.iteration, it.model, it.frontier, it.io))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let g = web_graph();
    // Untraced (default NullSink), explicit NullSink, and a live recorder
    // must all produce identical deterministic outcomes.
    let mut untraced = engine(&g, 4, GraphSdConfig::full());
    let base = untraced
        .run(&PageRank::paper(), &RunOptions::default())
        .unwrap();

    let mut nulled = engine(&g, 4, GraphSdConfig::full());
    nulled.set_trace(gsd_trace::null_sink());
    let with_null = nulled
        .run(&PageRank::paper(), &RunOptions::default())
        .unwrap();

    let mut recorded = engine(&g, 4, GraphSdConfig::full());
    let ring = Arc::new(RingRecorder::new(1 << 17));
    recorded.set_trace(ring.clone());
    let with_ring = recorded
        .run(&PageRank::paper(), &RunOptions::default())
        .unwrap();

    assert_eq!(
        deterministic_fingerprint(&base),
        deterministic_fingerprint(&with_null)
    );
    assert_eq!(
        deterministic_fingerprint(&base),
        deterministic_fingerprint(&with_ring)
    );
    // And the recorder actually saw the run.
    assert_eq!(
        ring.count_kind("iteration_end") as u32,
        with_ring.stats.iterations
    );
    assert_eq!(ring.count_kind("run_start"), 1);
    assert_eq!(ring.count_kind("run_end"), 1);
}
